package engine

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"hermes/internal/core"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/sequencer"
	"hermes/internal/tx"
)

const testRows = 200

// policies returns a named factory for every routing policy over a
// uniform range layout.
func policies(nodes int) map[string]PolicyFactory {
	base := partition.NewUniformRange(0, testRows, nodes)
	return map[string]PolicyFactory{
		"calvin": func(a []tx.NodeID) router.Policy { return router.NewCalvin(base, a) },
		"gstore": func(a []tx.NodeID) router.Policy { return router.NewGStore(base, a) },
		"leap":   func(a []tx.NodeID) router.Policy { return router.NewLEAP(base, a) },
		"tpart":  func(a []tx.NodeID) router.Policy { return router.NewTPart(base, a, 0.5) },
		"hermes": func(a []tx.NodeID) router.Policy {
			return core.New(base, a, core.DefaultConfig(testRows/4))
		},
	}
}

func newTestCluster(t *testing.T, nodes int, pf PolicyFactory) *Cluster {
	t.Helper()
	ids := make([]tx.NodeID, nodes)
	for i := range ids {
		ids[i] = tx.NodeID(i)
	}
	c, err := New(Config{
		Nodes:  ids,
		Policy: pf,
		Seq:    sequencer.Config{BatchSize: 8, Interval: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func loadCounters(c *Cluster, rows int) {
	for i := 0; i < rows; i++ {
		v := make([]byte, 8)
		c.LoadRecord(tx.MakeKey(0, uint64(i)), v)
	}
}

func counterVal(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// incProc returns a read-modify-write increment over keys.
func incProc(keys ...tx.Key) tx.Procedure {
	return &tx.OpProc{
		Reads:  keys,
		Writes: keys,
		Mutate: func(_ tx.Key, cur []byte) []byte {
			out := make([]byte, 8)
			binary.LittleEndian.PutUint64(out, counterVal(cur)+1)
			return out
		},
	}
}

func TestSingleTxnAllPolicies(t *testing.T) {
	for name, pf := range policies(3) {
		t.Run(name, func(t *testing.T) {
			c := newTestCluster(t, 3, pf)
			loadCounters(c, testRows)
			// Cross-partition increment: keys on different nodes.
			k1 := tx.MakeKey(0, 1)
			k2 := tx.MakeKey(0, 150)
			if err := c.SubmitAndWait(0, incProc(k1, k2)); err != nil {
				t.Fatal(err)
			}
			if !c.Drain(5 * time.Second) {
				t.Fatal("cluster did not drain")
			}
			for _, k := range []tx.Key{k1, k2} {
				v, ok := c.ReadRecord(k)
				if !ok || counterVal(v) != 1 {
					t.Fatalf("key %v = %v,%v, want counter 1", k, v, ok)
				}
			}
			if got := c.Collector().Committed(); got != 1 {
				t.Fatalf("Committed = %d", got)
			}
		})
	}
}

// TestSerializableCounters is the core serializability check: concurrent
// conflicting increments across partitions must all be applied exactly
// once, under every policy.
func TestSerializableCounters(t *testing.T) {
	const txns = 120
	for name, pf := range policies(4) {
		t.Run(name, func(t *testing.T) {
			c := newTestCluster(t, 4, pf)
			loadCounters(c, testRows)
			var waits []<-chan struct{}
			for i := 0; i < txns; i++ {
				// All transactions hit an overlapping hot pair plus a
				// rotating key, forcing both conflicts and distribution.
				hot := tx.MakeKey(0, uint64(i%4))
				cold := tx.MakeKey(0, uint64(50+(i%100)))
				done, err := c.Submit(tx.NodeID(i%4), incProc(hot, cold))
				if err != nil {
					t.Fatal(err)
				}
				waits = append(waits, done)
			}
			if !c.Drain(20 * time.Second) {
				t.Fatalf("cluster did not drain (pending=%d)", c.Pending())
			}
			for _, w := range waits {
				select {
				case <-w:
				default:
					t.Fatal("transaction reported drained but not completed")
				}
			}
			// Sum of all counters must equal total increments (2 per txn).
			var sum uint64
			for i := 0; i < testRows; i++ {
				if v, ok := c.ReadRecord(tx.MakeKey(0, uint64(i))); ok {
					sum += counterVal(v)
				}
			}
			if sum != 2*txns {
				t.Fatalf("counter sum = %d, want %d (lost or duplicated updates)", sum, 2*txns)
			}
			if c.TotalRecords() != testRows {
				t.Fatalf("records = %d, want %d (migration lost/duplicated records)", c.TotalRecords(), testRows)
			}
		})
	}
}

// TestDeterministicAcrossRuns: identical input streams must produce
// byte-identical final states (storage + fusion tables), run after run.
func TestDeterministicAcrossRuns(t *testing.T) {
	for _, name := range []string{"hermes", "leap", "tpart"} {
		t.Run(name, func(t *testing.T) {
			run := func() uint64 {
				pf := policies(3)[name]
				c := newTestCluster(t, 3, pf)
				loadCounters(c, testRows)
				for i := 0; i < 60; i++ {
					k1 := tx.MakeKey(0, uint64(i*7%testRows))
					k2 := tx.MakeKey(0, uint64(i*13%testRows))
					if _, err := c.Submit(tx.NodeID(i%3), incProc(k1, k2)); err != nil {
						t.Fatal(err)
					}
					// Submit in strict sequence so the total order is
					// identical between runs.
					if !c.Drain(10 * time.Second) {
						t.Fatal("drain failed")
					}
				}
				return c.Fingerprint()
			}
			if a, b := run(), run(); a != b {
				t.Fatalf("two identical runs produced different final states: %x vs %x", a, b)
			}
		})
	}
}

// TestFusionReplicasAgree: after a concurrent workload, every node's
// fusion-table replica must be identical.
func TestFusionReplicasAgree(t *testing.T) {
	pf := policies(4)["hermes"]
	c := newTestCluster(t, 4, pf)
	loadCounters(c, testRows)
	for i := 0; i < 200; i++ {
		k1 := tx.MakeKey(0, uint64(i%testRows))
		k2 := tx.MakeKey(0, uint64((i*31)%testRows))
		if _, err := c.Submit(tx.NodeID(i%4), incProc(k1, k2)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Drain(20 * time.Second) {
		t.Fatal("drain failed")
	}
	var want uint64
	for i, id := range c.order {
		f := c.nodes[id].policy.Placement().Fusion
		if f == nil {
			t.Fatal("hermes replica missing fusion table")
		}
		if i == 0 {
			want = f.Fingerprint()
		} else if f.Fingerprint() != want {
			t.Fatalf("node %d fusion table diverged", id)
		}
	}
}

// TestMatchesSerialExecution replays the committed schedule serially on a
// single map and compares final values — the "all committed effects
// serialize in total order" check.
func TestMatchesSerialExecution(t *testing.T) {
	for name, pf := range policies(3) {
		t.Run(name, func(t *testing.T) {
			c := newTestCluster(t, 3, pf)
			loadCounters(c, testRows)
			type op struct{ k1, k2 tx.Key }
			var ops []op
			for i := 0; i < 80; i++ {
				o := op{tx.MakeKey(0, uint64(i*3%testRows)), tx.MakeKey(0, uint64(i*11%testRows))}
				ops = append(ops, o)
				if _, err := c.Submit(tx.NodeID(i%3), incProc(o.k1, o.k2)); err != nil {
					t.Fatal(err)
				}
			}
			if !c.Drain(20 * time.Second) {
				t.Fatal("drain failed")
			}
			// Serial replay: increments commute here, so order-independent
			// expected values suffice.
			expect := map[tx.Key]uint64{}
			for _, o := range ops {
				if o.k1 == o.k2 {
					expect[o.k1]++
					continue
				}
				expect[o.k1]++
				expect[o.k2]++
			}
			for k, want := range expect {
				v, ok := c.ReadRecord(k)
				if !ok || counterVal(v) != want {
					t.Fatalf("key %v = %d, want %d", k, counterVal(v), want)
				}
			}
		})
	}
}

func TestLogicAbortRollsBackButMigrates(t *testing.T) {
	pf := policies(2)["hermes"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	kLocal := tx.MakeKey(0, 1)    // node 0
	kRemote := tx.MakeKey(0, 150) // node 1
	abortProc := &tx.OpProc{
		Reads:   []tx.Key{kLocal, kRemote},
		Writes:  []tx.Key{kLocal, kRemote},
		Value:   []byte("should-not-persist"),
		AbortIf: func(map[tx.Key][]byte) string { return "insufficient stock" },
	}
	if err := c.SubmitAndWait(0, abortProc); err != nil {
		t.Fatal(err)
	}
	if !c.Drain(5 * time.Second) {
		t.Fatal("drain failed")
	}
	if c.Collector().Aborted() != 1 {
		t.Fatalf("Aborted = %d, want 1", c.Collector().Aborted())
	}
	// Values rolled back everywhere.
	for _, k := range []tx.Key{kLocal, kRemote} {
		v, ok := c.ReadRecord(k)
		if !ok || counterVal(v) != 0 || len(v) != 8 {
			t.Fatalf("key %v = %q after abort, want original", k, v)
		}
	}
	// But the migration still happened (§4.2): kRemote moved to node 0.
	if owner := c.nodes[0].policy.Placement().Owner(kRemote); owner != 0 {
		t.Fatalf("aborted txn did not migrate: owner = %d, want 0", owner)
	}
	if _, ok := c.nodes[0].store.Read(kRemote); !ok {
		t.Fatal("migrated record absent at new owner after abort")
	}
	if _, ok := c.nodes[1].store.Read(kRemote); ok {
		t.Fatal("migrated record still present at old owner")
	}
	// A follow-up transaction must find consistent state.
	if err := c.SubmitAndWait(0, incProc(kLocal, kRemote)); err != nil {
		t.Fatal(err)
	}
	c.Drain(5 * time.Second)
	if v, _ := c.ReadRecord(kRemote); counterVal(v) != 1 {
		t.Fatalf("post-abort increment = %d, want 1", counterVal(v))
	}
}

func TestColdMigrationMovesRange(t *testing.T) {
	pf := policies(2)["hermes"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	// Move rows 0-9 (home node 0) to node 1 as one chunk.
	var keys []tx.Key
	for i := 0; i < 10; i++ {
		keys = append(keys, tx.MakeKey(0, uint64(i)))
	}
	if err := c.SubmitAndWait(0, &tx.MigrationProc{Keys: keys, To: 1}); err != nil {
		t.Fatal(err)
	}
	if !c.Drain(5 * time.Second) {
		t.Fatal("drain failed")
	}
	for _, k := range keys {
		if _, ok := c.nodes[1].store.Read(k); !ok {
			t.Fatalf("key %v not at destination", k)
		}
		if _, ok := c.nodes[0].store.Read(k); ok {
			t.Fatalf("key %v still at source", k)
		}
		if got := c.nodes[0].policy.Placement().Home(k); got != 1 {
			t.Fatalf("home of %v = %d, want 1", k, got)
		}
	}
	if c.TotalRecords() != testRows {
		t.Fatalf("records = %d, want %d", c.TotalRecords(), testRows)
	}
	// Records remain fully usable at the new home.
	if err := c.SubmitAndWait(0, incProc(keys[0], keys[9])); err != nil {
		t.Fatal(err)
	}
	c.Drain(5 * time.Second)
	if v, _ := c.ReadRecord(keys[0]); counterVal(v) != 1 {
		t.Fatalf("post-migration increment lost: %d", counterVal(v))
	}
}

func TestScaleOutProvisioning(t *testing.T) {
	// Start with 2 active of 3 nodes; activate the third; hot keys must
	// start landing on it and cold migration must move a range.
	ids := []tx.NodeID{0, 1, 2}
	base := partition.NewUniformRange(0, testRows, 2) // homes only on 0,1
	c, err := New(Config{
		Nodes:  ids,
		Active: []tx.NodeID{0, 1},
		Policy: func(a []tx.NodeID) router.Policy {
			return core.New(base, a, core.DefaultConfig(testRows/4))
		},
		Seq: sequencer.Config{BatchSize: 8, Interval: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	loadCounters(c, testRows)

	done, err := c.Provision([]tx.NodeID{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.seq.Flush()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("provision not acknowledged")
	}

	// Cold-migrate rows 0-19 to the new node.
	var keys []tx.Key
	for i := 0; i < 20; i++ {
		keys = append(keys, tx.MakeKey(0, uint64(i)))
	}
	if err := c.SubmitAndWait(0, &tx.MigrationProc{Keys: keys, To: 2}); err != nil {
		t.Fatal(err)
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	if got := c.nodes[2].store.Len(); got != 20 {
		t.Fatalf("new node has %d records, want 20", got)
	}
	// Transactions against migrated keys execute fine and may now master
	// on node 2.
	for i := 0; i < 30; i++ {
		if _, err := c.Submit(0, incProc(keys[i%20])); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	var sum uint64
	for _, k := range keys {
		v, _ := c.ReadRecord(k)
		sum += counterVal(v)
	}
	if sum != 30 {
		t.Fatalf("increments after scale-out = %d, want 30", sum)
	}
	if c.TotalRecords() != testRows {
		t.Fatalf("records = %d, want %d", c.TotalRecords(), testRows)
	}
}

func TestConsolidationRemovesNode(t *testing.T) {
	pf := policies(3)["hermes"]
	c := newTestCluster(t, 3, pf)
	loadCounters(c, testRows)
	// Heat up some keys onto node 2 via fusion, then remove node 2.
	hot := []tx.Key{tx.MakeKey(0, 140), tx.MakeKey(0, 141)} // home node 2
	for i := 0; i < 10; i++ {
		if _, err := c.Submit(2, incProc(hot[0], hot[1])); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	done, err := c.Provision(nil, []tx.NodeID{2})
	if err != nil {
		t.Fatal(err)
	}
	c.seq.Flush()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consolidation not acknowledged")
	}
	// Cold-migrate node 2's remaining records to node 0.
	remaining := c.nodes[2].store.Keys()
	if len(remaining) > 0 {
		if err := c.SubmitAndWait(0, &tx.MigrationProc{Keys: remaining, To: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	if got := c.nodes[2].store.Len(); got != 0 {
		t.Fatalf("removed node still has %d records", got)
	}
	if c.TotalRecords() != testRows {
		t.Fatalf("records = %d, want %d", c.TotalRecords(), testRows)
	}
	// Workload continues on the remaining nodes.
	for i := 0; i < 20; i++ {
		if _, err := c.Submit(tx.NodeID(i%2), incProc(hot[0])); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	v, ok := c.ReadRecord(hot[0])
	if !ok || counterVal(v) != 30 {
		t.Fatalf("hot counter = %d, want 30", counterVal(v))
	}
}

func TestRecoveryFromCommandLog(t *testing.T) {
	// Run a workload, checkpoint mid-way, keep running, then rebuild a
	// fresh cluster from checkpoint + command-log replay and compare
	// fingerprints (§4.3).
	pf := policies(2)["hermes"]

	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	submitPhase := func(c *Cluster, lo, hi int) {
		for i := lo; i < hi; i++ {
			k1 := tx.MakeKey(0, uint64(i*3%testRows))
			k2 := tx.MakeKey(0, uint64(i*7%testRows))
			if _, err := c.Submit(tx.NodeID(i%2), incProc(k1, k2)); err != nil {
				t.Fatal(err)
			}
			if !c.Drain(10 * time.Second) {
				t.Fatal("drain failed")
			}
		}
	}
	submitPhase(c, 0, 20)

	// Consistent checkpoint: quiesced between batches.
	checkpoints := map[tx.NodeID]map[tx.Key][]byte{}
	for id, n := range c.nodes {
		checkpoints[id] = n.store.Checkpoint()
	}
	cpSeq := c.nodes[0].cmdlog.Len() // first sequence NOT covered by checkpoint

	submitPhase(c, 20, 40)
	want := c.Fingerprint()
	logged := c.nodes[0].cmdlog.Since(uint64(cpSeq))

	// "Restart": fresh cluster, restore checkpoint, replay the log.
	c2 := newTestCluster(t, 2, pf)
	for id, cp := range checkpoints {
		c2.nodes[id].store.Restore(cp)
	}
	// Rebuild routing state by replaying the *entire* command stream
	// through the policy replicas (placement state is derived state; the
	// checkpoint covers storage, the log covers placement deltas since
	// batch 0 — replay routing only, not execution, for pre-checkpoint
	// batches).
	preCp := c.nodes[0].cmdlog.Since(0)[:cpSeq]
	for _, n := range c2.nodes {
		for _, b := range preCp {
			router.BuildPlan(n.policy, b)
		}
	}
	// Replay post-checkpoint batches through the full execution path.
	for _, b := range logged {
		for _, r := range b.Txns {
			r.SubmitTime = time.Now()
		}
		reqs := b.Txns
		for _, r := range reqs {
			if _, err := c2.Submit(0, r.Proc); err != nil {
				t.Fatal(err)
			}
		}
		if !c2.Drain(10 * time.Second) {
			t.Fatal("replay drain failed")
		}
	}
	if got := c2.Fingerprint(); got != want {
		t.Fatalf("recovered state %x != original %x", got, want)
	}
}

func TestNetworkBytesAccounted(t *testing.T) {
	pf := policies(2)["hermes"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	if err := c.SubmitAndWait(0, incProc(tx.MakeKey(0, 1), tx.MakeKey(0, 150))); err != nil {
		t.Fatal(err)
	}
	c.Drain(5 * time.Second)
	msgs, bytes := c.NetStats().Totals()
	if msgs == 0 || bytes == 0 {
		t.Fatalf("no network accounting: %d msgs %d bytes", msgs, bytes)
	}
}

func TestLatencyBreakdownPopulated(t *testing.T) {
	pf := policies(2)["gstore"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	for i := 0; i < 20; i++ {
		if _, err := c.Submit(0, incProc(tx.MakeKey(0, 1), tx.MakeKey(0, 150))); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	bd := c.Collector().AvgBreakdown()
	if bd.Total() <= 0 {
		t.Fatalf("empty breakdown: %+v", bd)
	}
}

func TestSubmitAfterStopFails(t *testing.T) {
	pf := policies(2)["calvin"]
	c := newTestCluster(t, 2, pf)
	c.Stop()
	if _, err := c.Submit(0, incProc(tx.MakeKey(0, 1))); err == nil {
		t.Fatal("submit after stop succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Nodes: []tx.NodeID{0}}); err == nil {
		t.Fatal("missing policy accepted")
	}
}

func TestThroughputUnderLoadAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	for name, pf := range policies(4) {
		t.Run(name, func(t *testing.T) {
			c := newTestCluster(t, 4, pf)
			loadCounters(c, testRows)
			const txns = 400
			for i := 0; i < txns; i++ {
				k1 := tx.MakeKey(0, uint64(i%testRows))
				k2 := tx.MakeKey(0, uint64((i*37+11)%testRows))
				if _, err := c.Submit(tx.NodeID(i%4), incProc(k1, k2)); err != nil {
					t.Fatal(err)
				}
			}
			if !c.Drain(30 * time.Second) {
				t.Fatalf("%s did not drain %d txns (pending=%d)", name, txns, c.Pending())
			}
			if got := c.Collector().Committed(); got != txns {
				t.Fatalf("Committed = %d, want %d", got, txns)
			}
			var sum uint64
			for i := 0; i < testRows; i++ {
				if v, ok := c.ReadRecord(tx.MakeKey(0, uint64(i))); ok {
					sum += counterVal(v)
				}
			}
			if sum != 2*txns {
				t.Fatalf("%s: counter sum = %d, want %d", name, sum, 2*txns)
			}
		})
	}
}

func ExampleCluster() {
	base := partition.NewUniformRange(0, 100, 2)
	c, err := New(Config{
		Nodes: []tx.NodeID{0, 1},
		Policy: func(a []tx.NodeID) router.Policy {
			return core.New(base, a, core.DefaultConfig(25))
		},
		Seq: sequencer.Config{BatchSize: 4, Interval: time.Millisecond},
	})
	if err != nil {
		panic(err)
	}
	defer c.Stop()
	c.LoadRecord(tx.MakeKey(0, 1), []byte("hello"))
	c.SubmitAndWait(0, &tx.OpProc{
		Reads:  []tx.Key{tx.MakeKey(0, 1)},
		Writes: []tx.Key{tx.MakeKey(0, 1)},
		Value:  []byte("world"),
	})
	c.Drain(5 * time.Second)
	v, _ := c.ReadRecord(tx.MakeKey(0, 1))
	fmt.Println(string(v))
	// Output: world
}
