package engine

import (
	"math/rand"
	"testing"

	"hermes/internal/core"
	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// checkRouteConservation simulates roleFor on every node for one route
// and verifies the message-flow invariants the executors rely on:
// every record a node expects has exactly one sender, and vice versa.
func checkRouteConservation(t *testing.T, c *Cluster, rt *router.Route) {
	t.Helper()
	if rt.Mode != router.SingleMaster {
		return
	}
	// Per-destination inbound record keys, from every node's role.
	inbound := map[tx.NodeID]map[tx.Key]int{}
	expected := map[tx.NodeID]int{}
	for id, n := range c.nodes {
		role := n.roleFor(rt)
		expected[id] = role.expectRecords
		for dest, keys := range role.pushTo {
			if inbound[dest] == nil {
				inbound[dest] = map[tx.Key]int{}
			}
			for _, k := range keys {
				inbound[dest][k]++
			}
		}
		// Master's outbound migrations also deliver records (post-exec).
		for _, m := range role.outMigrations {
			if inbound[m.To] == nil {
				inbound[m.To] = map[tx.Key]int{}
			}
			inbound[m.To][m.Key]++
		}
		// Write-backs from the master deliver records to owners.
		if role.isMaster {
			for _, k := range rt.WriteBack {
				owner := rt.Owners[k]
				if owner != id {
					if inbound[owner] == nil {
						inbound[owner] = map[tx.Key]int{}
					}
					inbound[owner][k]++
				}
			}
		}
	}
	for id := range c.nodes {
		distinct := len(inbound[id])
		if distinct < expected[id] {
			t.Fatalf("route txn %d: node %d expects %d records but only %d distinct keys are sent to it\nroute: master=%d owners=%v migrations=%v writeback=%v",
				rt.Txn.ID, id, expected[id], distinct, rt.Master, rt.Owners, rt.Migrations, rt.WriteBack)
		}
	}
}

// TestRouteConservationFuzz drives the prescient router (with a tiny
// fusion table so self-evictions occur) through random batches and
// checks every produced route satisfies the conservation invariant.
func TestRouteConservationFuzz(t *testing.T) {
	base := partition.NewUniformRange(0, testRows, 4)
	pf := func(a []tx.NodeID) router.Policy {
		return core.New(base, a, core.Config{Alpha: 0, FusionCapacity: 3, FusionPolicy: fusion.FIFO})
	}
	c := newTestCluster(t, 4, pf)
	pol := c.nodes[0].policy
	rng := rand.New(rand.NewSource(21))
	var id tx.TxnID = 1
	for batch := 0; batch < 200; batch++ {
		var txns []*tx.Request
		for i := 0; i < 6; i++ {
			nKeys := 1 + rng.Intn(4)
			var rs, ws []tx.Key
			for j := 0; j < nKeys; j++ {
				k := tx.MakeKey(0, uint64(rng.Intn(testRows)))
				rs = append(rs, k)
				if rng.Intn(3) > 0 {
					ws = append(ws, k)
				}
			}
			if rng.Intn(4) == 0 { // blind write occasionally
				ws = append(ws, tx.MakeKey(0, uint64(rng.Intn(testRows))))
			}
			txns = append(txns, tx.NewRequest(id, &tx.OpProc{Reads: rs, Writes: ws}))
			id++
		}
		for _, rt := range pol.RouteUser(txns) {
			checkRouteConservation(t, c, rt)
		}
	}
}
