package engine

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/core"
	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// checkRouteConservation simulates roleFor on every node for one route
// and verifies the message-flow invariants the executors rely on:
// every record a node expects has exactly one sender, and vice versa.
func checkRouteConservation(t *testing.T, c *Cluster, rt *router.Route) {
	t.Helper()
	if rt.Mode != router.SingleMaster {
		return
	}
	// Per-destination inbound record keys, from every node's role.
	inbound := map[tx.NodeID]map[tx.Key]int{}
	expected := map[tx.NodeID]int{}
	for id, n := range c.nodes {
		role := n.roleFor(rt)
		expected[id] = role.expectRecords
		for dest, keys := range role.pushTo {
			if inbound[dest] == nil {
				inbound[dest] = map[tx.Key]int{}
			}
			for _, k := range keys {
				inbound[dest][k]++
			}
		}
		// Master's outbound migrations also deliver records (post-exec).
		for _, m := range role.outMigrations {
			if inbound[m.To] == nil {
				inbound[m.To] = map[tx.Key]int{}
			}
			inbound[m.To][m.Key]++
		}
		// Write-backs from the master deliver records to owners.
		if role.isMaster {
			for _, k := range rt.WriteBack {
				owner := rt.Owners.Get(k)
				if owner != id {
					if inbound[owner] == nil {
						inbound[owner] = map[tx.Key]int{}
					}
					inbound[owner][k]++
				}
			}
		}
	}
	for id := range c.nodes {
		distinct := len(inbound[id])
		if distinct < expected[id] {
			t.Fatalf("route txn %d: node %d expects %d records but only %d distinct keys are sent to it\nroute: master=%d owners=%v migrations=%v writeback=%v",
				rt.Txn.ID, id, expected[id], distinct, rt.Master, rt.Owners, rt.Migrations, rt.WriteBack)
		}
	}
}

// TestRouteConservationFuzz drives the prescient router (with a tiny
// fusion table so self-evictions occur) through random batches and
// checks every produced route satisfies the conservation invariant.
func TestRouteConservationFuzz(t *testing.T) {
	base := partition.NewUniformRange(0, testRows, 4)
	pf := func(a []tx.NodeID) router.Policy {
		return core.New(base, a, core.Config{Alpha: 0, FusionCapacity: 3, FusionPolicy: fusion.FIFO})
	}
	c := newTestCluster(t, 4, pf)
	pol := c.nodes[0].policy
	rng := rand.New(rand.NewSource(21))
	var id tx.TxnID = 1
	for batch := 0; batch < 200; batch++ {
		var txns []*tx.Request
		for i := 0; i < 6; i++ {
			nKeys := 1 + rng.Intn(4)
			var rs, ws []tx.Key
			for j := 0; j < nKeys; j++ {
				k := tx.MakeKey(0, uint64(rng.Intn(testRows)))
				rs = append(rs, k)
				if rng.Intn(3) > 0 {
					ws = append(ws, k)
				}
			}
			if rng.Intn(4) == 0 { // blind write occasionally
				ws = append(ws, tx.MakeKey(0, uint64(rng.Intn(testRows))))
			}
			txns = append(txns, tx.NewRequest(id, &tx.OpProc{Reads: rs, Writes: ws}))
			id++
		}
		for _, rt := range pol.RouteUser(txns) {
			checkRouteConservation(t, c, rt)
		}
	}
}

// TestStorageConservationAcrossMigrations checks the storage-level
// counterpart of route conservation: however records move — policy-driven
// migrations (LEAP/Hermes), write-backs (G-Store+), or explicit cold
// migration transactions — the cluster-wide record count and byte volume
// must stay exactly what was loaded. A record duplicated or lost in
// transit shows up here as a total that drifted.
func TestStorageConservationAcrossMigrations(t *testing.T) {
	for name, pf := range policies(3) {
		t.Run(name, func(t *testing.T) {
			c := newTestCluster(t, 3, pf)
			loadCounters(c, testRows)
			wantRecords := testRows
			wantBytes := int64(testRows * 8) // loadCounters writes 8-byte values
			if got := c.TotalBytes(); got != wantBytes {
				t.Fatalf("loaded bytes = %d, want %d", got, wantBytes)
			}
			// Cross-partition traffic: value-size-preserving increments over
			// skewed keys, so look-present policies migrate and Hermes fuses.
			// The increments stay below row 120 so they can never re-migrate
			// the explicitly moved block after its final hop.
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 90; i++ {
				k1 := tx.MakeKey(0, uint64(rng.Intn(120)))
				k2 := tx.MakeKey(0, uint64(rng.Intn(8))) // hot band
				if _, err := c.Submit(tx.NodeID(i%3), incProc(k1, k2)); err != nil {
					t.Fatal(err)
				}
			}
			// Explicit cold migrations bouncing one block between nodes while
			// the increments are still in flight.
			block := make([]tx.Key, 0, 40)
			for i := uint64(120); i < 160; i++ {
				block = append(block, tx.MakeKey(0, i))
			}
			for _, dest := range []tx.NodeID{1, 2, 0} {
				if err := c.SubmitAndWait(dest, &tx.MigrationProc{Keys: block, To: dest}); err != nil {
					t.Fatal(err)
				}
			}
			if !c.Drain(30 * time.Second) {
				t.Fatalf("did not drain (pending=%d)", c.Pending())
			}
			if got := c.TotalRecords(); got != wantRecords {
				t.Fatalf("record count not conserved: %d, want %d", got, wantRecords)
			}
			if got := c.TotalBytes(); got != wantBytes {
				t.Fatalf("byte volume not conserved: %d, want %d", got, wantBytes)
			}
			// The per-node digests must agree with the totals they summarize.
			var recs int
			var bytes int64
			for _, d := range c.NodeDigests() {
				recs += d.Records
				bytes += d.Bytes
			}
			if recs != wantRecords || bytes != wantBytes {
				t.Fatalf("NodeDigests sum = %d recs %d bytes, want %d/%d",
					recs, bytes, wantRecords, wantBytes)
			}
			// The explicit migrations must have ended with the block on node 0.
			if got := c.Node(0).Store(); got != nil {
				for _, k := range block {
					if _, ok := got.Read(k); !ok {
						t.Fatalf("migrated key %v missing from final destination", k)
					}
				}
			}
		})
	}
}
