// Package engine is the deterministic distributed execution engine: the
// Calvin-style node stack of Fig. 4 (sequencer front-end → scheduler →
// executors → storage) extended with Hermes's single-master data-fusion
// execution (§3.1-3.2), on-the-fly record migration, fusion-table
// eviction write-backs (§4.1), logic aborts with UNDO (§4.2), command-log
// recovery (§4.3), and dynamic machine provisioning through totally
// ordered control transactions (§3.3).
//
// The whole cluster runs in one process: every node is a goroutine group
// with its own storage, lock manager, and routing-policy replica,
// connected by a transport that injects configurable network latency and
// counts bytes. Which routing policy a cluster runs (Calvin, G-Store+,
// LEAP, T-Part, Hermes, ...) is the only difference between the systems
// the paper compares — everything else is shared, as in the paper's
// evaluation where all baselines were built on the same code base.
package engine

import (
	"fmt"
	"sync"
	"time"

	"hermes/internal/fusion"
	"hermes/internal/metrics"
	"hermes/internal/network"
	"hermes/internal/router"
	"hermes/internal/sequencer"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// PolicyFactory builds one routing-policy replica for a node. It is
// called once per node with the identical arguments; the returned replicas
// must be independent (no shared mutable state) and deterministic.
type PolicyFactory func(active []tx.NodeID) router.Policy

// Config assembles a cluster.
type Config struct {
	// Nodes is the total node set, including standby nodes that may be
	// activated later by provisioning (Fig. 14's scale-out target starts
	// as a standby).
	Nodes []tx.NodeID
	// Active is the initially active subset (defaults to all of Nodes).
	Active []tx.NodeID
	// Policy builds each node's routing replica.
	Policy PolicyFactory
	// Seq configures request batching and the total-order service's
	// fault-tolerance profile (Seq.Standbys > 0 runs standby sequencer
	// replicas with replicated delivery and automatic failover).
	Seq sequencer.Config
	// Latency is the network latency model (nil = immediate delivery).
	Latency network.LatencyModel
	// WrapTransport, if non-nil, wraps the cluster's base transport before
	// any component uses it. The chaos harness injects its seeded
	// fault-injecting transport here; wrappers must preserve the Transport
	// contract (per-link FIFO order, asynchronous delivery) — unless the
	// cluster also runs the reliable layer (below), which restores the
	// contract over lossy wrappers.
	WrapTransport func(network.Transport) network.Transport
	// Reliable interposes the reliable-delivery layer (sequence numbers,
	// acks, retransmission, dedup, and per-destination delivery logs)
	// between the wrapped transport and every engine component. It is
	// required for CrashNode/RestartNode — the delivery log is what lets a
	// restarted node re-receive the input it lost — and for running over
	// transports that drop or duplicate messages.
	Reliable bool
	// JournalFor, when set with Reliable, gives each node's delivery log a
	// durable journal sink (nil return = no journal for that node). The
	// chaos harness uses it to run real fault-injected journals as shadows
	// of the in-memory delivery logs.
	JournalFor func(tx.NodeID) func(network.Message)
	// AckGateFor, when set with Reliable, routes each node's ack sends
	// through its journal's durability gate (Journal.AfterDurable).
	AckGateFor func(tx.NodeID) func(func())
	// StorageDelay is an optional per-record storage access cost,
	// emulating buffer-pool pressure. Zero for unit tests.
	StorageDelay time.Duration
	// Executors bounds how many transactions a node can *execute*
	// concurrently (the paper's nodes have 4-core machines running a
	// fixed executor pool). Waiting for locks or remote records does not
	// occupy an executor slot, so the bound cannot deadlock. Default 4;
	// negative means unbounded.
	Executors int
	// ExecCost is the simulated CPU time consumed by executing one
	// transaction's logic while holding an executor slot. Together with
	// Executors it defines a node's saturation throughput, which is what
	// makes hot-node overload visible in the emulation. Zero for unit
	// tests.
	ExecCost time.Duration
	// ExecMode selects the admission engine: ExecModeLock (default, the
	// conservative ordered lock manager) or ExecModeQueue (queue-oriented
	// zero-lock execution, internal/qexec). Both produce byte-identical
	// final state for the same input stream; queue mode trades the lock
	// table for planning-time per-key queues (see docs/PERF.md).
	ExecMode string
	// Window is the metrics throughput window (default 1s).
	Window time.Duration
	// CommitHook, if non-nil, is invoked once per committed user
	// transaction at its committing node with the executed route. It is
	// how external look-back controllers (Clay's planner, §5.2.1)
	// observe the workload; it must be fast or hand off to a channel.
	CommitHook func(route *router.Route)
	// Telemetry, if non-nil, receives lifecycle trace events and gets the
	// cluster's gauges registered into its registry. Telemetry is strictly
	// observation-only: no engine decision reads it, so enabling it cannot
	// change the deterministic outcome (enforced by the chaos harness's
	// telemetry-equivalence check).
	Telemetry *telemetry.Telemetry
}

// LeaderNode is the transport address of the dedicated total-order leader
// machine (the paper dedicates one machine to the Zab leader).
const LeaderNode tx.NodeID = -64

// Execution modes (Config.ExecMode).
const (
	// ExecModeLock is the conservative ordered lock manager (default).
	ExecModeLock = "lock"
	// ExecModeQueue is queue-oriented zero-lock execution: per-key
	// operation queues planned at schedule time, drained by bucket-owner
	// workers (internal/qexec).
	ExecModeQueue = "queue"
)

// Cluster is a running emulated cluster.
type Cluster struct {
	cfg Config
	// tr is what every component sends and receives through; it is base
	// unless Config.WrapTransport interposed a wrapper (fault injection).
	tr   network.Transport
	base *network.ChanTransport
	// rel is the reliable-delivery layer when Config.Reliable is set (nil
	// otherwise); crash/restart and lossy-link tolerance depend on it.
	rel *network.Reliable
	// seq is the total-order service: the leader replica plus
	// Config.Seq.Standbys standby replicas.
	seq *sequencer.Group
	// fes holds one persistent sequencer front-end per node; with
	// standbys configured these are session front-ends that retry and
	// redirect unacknowledged submissions across a leader failover.
	fes map[tx.NodeID]*sequencer.Frontend
	// nodesMu guards nodes: RestartNode swaps in a fresh *Node while the
	// rest of the cluster keeps running.
	nodesMu   sync.RWMutex
	nodes     map[tx.NodeID]*Node
	order     []tx.NodeID
	collector *metrics.Collector
	start     time.Time
	// tracer is Config.Telemetry's tracer (nil when telemetry is off);
	// every Emit through a nil tracer is a single-branch no-op.
	tracer *telemetry.Tracer

	// distributed marks a single-node cluster process (NewWorker): the
	// total-order leader and the other nodes live in other OS processes,
	// seq is nil, and client completion crosses the wire as MsgTxnDone.
	distributed bool
	// self is the local node id in distributed mode.
	self tx.NodeID
	// netStats is the byte/message accounting source: the in-process
	// channel transport's in emulation, the socket transport's in a
	// distributed worker.
	netStats *network.Stats

	mu      sync.Mutex
	pending map[tx.TxnID]chan struct{}
	// submitted tracks requests by pointer until the leader assigns IDs.
	waiters map[*tx.Request]chan struct{}
	// seqWaiters tracks distributed submissions by front-end ClientSeq
	// instead: pointer identity does not survive serialization, while the
	// (Client, ClientSeq) stamp travels with the request.
	seqWaiters map[uint64]chan struct{}
	// earlyDone holds completion notices that outran the local scheduler:
	// in a multi-process cluster a fast peer can execute a single-home
	// transaction and send MsgTxnDone before this process has consumed the
	// sealed batch that would register the waiter. The registration path
	// consumes these instead of parking a waiter that would never fire.
	earlyDone map[tx.TxnID]struct{}
	// lastAssigned is the highest transaction ID the local scheduler has
	// passed to registration. IDs are assigned densely in total order and
	// registered in that order, so a completion notice for id <=
	// lastAssigned with no pending entry is a duplicate, while one for a
	// higher id arrived early and must be stashed in earlyDone.
	lastAssigned tx.TxnID
	active       []tx.NodeID
	stopped      bool
	// crashed maps a down node to when it was killed (Reliable mode only).
	crashed map[tx.NodeID]time.Time
	// seqCrashed is the killed sequencer replica while a leader crash is
	// outstanding (NoNode otherwise).
	seqCrashed tx.NodeID
	// accounted dedups metric recording per transaction: replay after a
	// restart re-commits transactions at the recovering node, and those
	// must not count twice. Only consulted in Reliable mode.
	accounted map[tx.TxnID]struct{}
	// lastCP is the most recent successful checkpoint; RestartNode replays
	// from it.
	lastCP *Checkpoint
}

// New assembles and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	c, err := build(cfg)
	if err != nil {
		return nil, err
	}
	c.startAll()
	return c, nil
}

// build assembles a cluster without starting any goroutines; recovery
// needs the window between construction and start to restore state.
func build(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("engine: no nodes")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("engine: no policy factory")
	}
	if len(cfg.Active) == 0 {
		cfg.Active = cfg.Nodes
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	switch cfg.ExecMode {
	case "", ExecModeLock, ExecModeQueue:
	default:
		return nil, fmt.Errorf("engine: unknown ExecMode %q (want %q or %q)",
			cfg.ExecMode, ExecModeLock, ExecModeQueue)
	}
	all := append(append([]tx.NodeID(nil), cfg.Nodes...), sequencer.GroupNodes(LeaderNode, cfg.Seq.Standbys)...)
	base := network.NewChanTransport(all, cfg.Latency)
	var tr network.Transport = base
	if cfg.WrapTransport != nil {
		tr = cfg.WrapTransport(base)
	}
	var rel *network.Reliable
	if cfg.Reliable {
		rel = network.NewReliableWith(tr, network.ReliableOpts{
			RecvFor:    all,
			SendTo:     all,
			JournalFor: cfg.JournalFor,
			AckGateFor: cfg.AckGateFor,
		})
		tr = rel
	}
	c := &Cluster{
		cfg:        cfg,
		tr:         tr,
		base:       base,
		rel:        rel,
		nodes:      make(map[tx.NodeID]*Node, len(cfg.Nodes)),
		order:      append([]tx.NodeID(nil), cfg.Nodes...),
		pending:    make(map[tx.TxnID]chan struct{}),
		waiters:    make(map[*tx.Request]chan struct{}),
		active:     append([]tx.NodeID(nil), cfg.Active...),
		crashed:    make(map[tx.NodeID]time.Time),
		seqCrashed: tx.NoNode,
		accounted:  make(map[tx.TxnID]struct{}),
		start:      time.Now(),
	}
	c.netStats = base.Stats()
	c.collector = metrics.NewCollector(c.start, cfg.Window)
	c.tracer = cfg.Telemetry.Tracer()
	// Every node (including standbys) receives the full batch stream so
	// its routing replica stays in sync; only active nodes are routed to.
	c.seq = sequencer.NewGroup(LeaderNode, c.tr, cfg.Nodes, cfg.Seq, nil)
	c.seq.SetOnFailover(func(leader tx.NodeID, epoch uint64) {
		c.tracer.Emit(telemetry.ClusterNode, 0, telemetry.PhaseFailover, int64(epoch))
		for _, fe := range c.fes {
			fe.SetLeader(leader)
		}
	})
	c.fes = make(map[tx.NodeID]*sequencer.Frontend, len(cfg.Nodes))
	for _, id := range cfg.Nodes {
		if cfg.Seq.Standbys > 0 {
			c.fes[id] = sequencer.NewSessionFrontend(id, LeaderNode, c.tr, nil,
				cfg.Seq.RetryTimeout, cfg.Seq.RetryCap)
		} else {
			c.fes[id] = sequencer.NewFrontend(id, LeaderNode, c.tr)
		}
	}
	for _, id := range cfg.Nodes {
		n := newNode(id, c, cfg.Policy(cfg.Active))
		c.nodes[id] = n
	}
	c.registerGauges()
	return c, nil
}

// fusionStats shortens the gauge closures below.
type fusionStats = fusion.Stats

// registerGauges publishes the cluster's live state into the telemetry
// registry. Every closure reads through c.node(id) / c.rel so a node
// swapped by RestartNode is picked up automatically; all reads are
// observation-only.
func (c *Cluster) registerGauges() {
	reg := c.cfg.Telemetry.Registry()
	if reg == nil {
		return
	}
	col := c.collector
	reg.Gauge("hermes_txns_committed_total", "committed transactions",
		func() float64 { return float64(col.Committed()) })
	reg.Gauge("hermes_txns_aborted_total", "logic-aborted transactions",
		func() float64 { return float64(col.Aborted()) })
	reg.Gauge("hermes_migration_records_total", "cumulative migrated records",
		func() float64 { return float64(col.Migrations()) })
	reg.Gauge("hermes_migration_bytes_total", "cumulative migrated payload bytes landed",
		func() float64 { return float64(col.MigrationBytes()) })
	reg.Gauge("hermes_migrations_in_flight", "transactions currently executing with attached migrations",
		func() float64 { return float64(col.MigrationsInFlight()) })
	reg.Gauge("hermes_remote_reads_total", "records read across the network",
		func() float64 { return float64(col.RemoteReads()) })
	reg.Gauge("hermes_node_crashes_total", "node kills",
		func() float64 { return float64(col.Crashes()) })
	reg.Gauge("hermes_node_recoveries_total", "node restarts",
		func() float64 { return float64(col.Recoveries()) })
	reg.Gauge("hermes_routing_batches_total", "batch-routing invocations across replicas",
		func() float64 { return float64(col.Routing().Batches) })
	reg.Gauge("hermes_routing_us_per_batch", "mean prescient-routing cost per batch (microseconds)",
		func() float64 { return float64(col.Routing().PerBatch) / 1e3 })
	if c.cfg.ExecMode == ExecModeQueue {
		reg.Gauge("hermes_queue_plan_us_per_batch", "mean queue-planning cost per batch (microseconds)",
			func() float64 { return float64(col.QueuePlan().PerBatch) / 1e3 })
	}

	if c.seq != nil {
		reg.Gauge("hermes_seq_batches_total", "batches sealed by the total-order leader",
			func() float64 { return float64(c.seq.Stats().Batches) })
		reg.Gauge("hermes_seq_batch_fill", "last sealed batch size relative to the configured batch size",
			func() float64 { return c.seq.Stats().LastFill })
		reg.Gauge("hermes_seq_pending", "requests waiting at the leader for the next flush",
			func() float64 { return float64(c.seq.Stats().Pending) })
		reg.Gauge("hermes_seq_epoch", "current sequencer leadership epoch",
			func() float64 { return float64(c.seq.Epoch()) })
		reg.Gauge("hermes_seq_failovers_total", "completed sequencer leader promotions",
			func() float64 { return float64(c.seq.Failovers()) })
		reg.Gauge("hermes_seq_heartbeat_misses_total", "leader heartbeat misses observed by standby sequencers",
			func() float64 { return float64(c.seq.HeartbeatMisses()) })
	}

	netStats := c.netStats
	reg.Gauge("hermes_net_messages_total", "transport messages sent",
		func() float64 { m, _ := netStats.Totals(); return float64(m) })
	reg.Gauge("hermes_net_bytes_total", "transport payload bytes sent",
		func() float64 { _, b := netStats.Totals(); return float64(b) })
	if c.rel != nil {
		rel := c.rel
		reg.Gauge("hermes_transport_retransmits_total", "messages re-sent by the reliable layer",
			func() float64 { return float64(rel.Stats().Retransmits) })
		reg.Gauge("hermes_transport_dups_dropped_total", "duplicate messages discarded by the reliable layer",
			func() float64 { return float64(rel.Stats().DupsDropped) })
		reg.Gauge("hermes_transport_unacked", "sender-side unacknowledged messages (retransmission window)",
			func() float64 { u, _ := rel.Depths(); return float64(u) })
		reg.Gauge("hermes_transport_backlog", "receiver-side logged messages not yet handed to consumers",
			func() float64 { _, b := rel.Depths(); return float64(b) })
	}

	for _, id := range c.cfg.Nodes {
		id := id
		label := fmt.Sprintf(`{node="%d"}`, id)
		reg.Gauge("hermes_sched_queue_depth"+label, "batches waiting in the node's scheduler queue",
			func() float64 {
				if n := c.node(id); n != nil {
					return float64(len(n.batches))
				}
				return 0
			})
		reg.Gauge("hermes_sched_seq"+label, "1 + sequence of the last batch the node's scheduler consumed",
			func() float64 {
				if n := c.node(id); n != nil {
					return float64(n.Scheduled())
				}
				return 0
			})
		reg.Gauge("hermes_node_busy_seconds_total"+label, "cumulative executor busy time",
			func() float64 { return col.BusyTotal(int(id)).Seconds() })
		// Admission depth, comparable across execution modes: keys with a
		// non-empty lock queue in lock mode, keys with a non-empty
		// operation queue in queue mode.
		reg.Gauge("hermes_lock_queued_keys"+label, "keys with a non-empty admission queue (lock or operation queue)",
			func() float64 {
				if n := c.node(id); n != nil {
					return float64(n.locks.QueuedKeys())
				}
				return 0
			})
		if c.cfg.ExecMode == ExecModeQueue {
			reg.Gauge("hermes_exec_queue_depth"+label, "keys with a non-empty per-key operation queue",
				func() float64 {
					if n := c.node(id); n != nil && n.qx != nil {
						return float64(n.qx.QueuedKeys())
					}
					return 0
				})
			// Per-worker drain counters need the worker count, which is
			// fixed for the cluster's lifetime; read it from the initial
			// node instance (RestartNode rebuilds with the same config).
			if n0 := c.node(id); n0 != nil && n0.qx != nil {
				for w := 0; w < n0.qx.Workers(); w++ {
					w := w
					wlabel := fmt.Sprintf(`{node="%d",worker="%d"}`, id, w)
					reg.Gauge("hermes_exec_worker_drained_total"+wlabel, "transactions whose rendezvous this bucket worker completed",
						func() float64 {
							if n := c.node(id); n != nil && n.qx != nil && w < n.qx.Workers() {
								return float64(n.qx.Drained(w))
							}
							return 0
						})
				}
			}
		}
		fusionStat := func(pick func(fusionStats) int64) func() float64 {
			return func() float64 {
				if n := c.node(id); n != nil {
					if f := n.policy.Placement().Fusion; f != nil {
						return float64(pick(f.Stats()))
					}
				}
				return 0
			}
		}
		reg.Gauge("hermes_fusion_occupancy"+label, "fusion-table entries currently tracked",
			fusionStat(func(s fusionStats) int64 { return s.Size }))
		reg.Gauge("hermes_fusion_inserts_total"+label, "fusion-table insertions",
			fusionStat(func(s fusionStats) int64 { return s.Inserts }))
		reg.Gauge("hermes_fusion_evictions_total"+label, "fusion-table capacity evictions",
			fusionStat(func(s fusionStats) int64 { return s.Evictions }))
		reg.Gauge("hermes_fusion_deletes_total"+label, "fusion-table deletions (records migrated home)",
			fusionStat(func(s fusionStats) int64 { return s.Deletes }))
		reg.Gauge("hermes_fusion_owner_moves_total"+label, "tracked keys re-owned to a different node (hot-set churn)",
			fusionStat(func(s fusionStats) int64 { return s.OwnerMoves }))
	}
}

func (c *Cluster) startAll() {
	for _, n := range c.nodeList() {
		n.start()
	}
	if c.seq != nil {
		c.seq.Start()
	}
}

// noteLeader folds a sequencer epoch announcement observed by a node
// into the cluster view; when the view advances, every front-end is
// redirected (and resends its unacknowledged queue to the new leader).
func (c *Cluster) noteLeader(leader tx.NodeID, epoch uint64) {
	if c.seq == nil {
		return // distributed worker: the leader process manages its own epoch
	}
	if c.seq.ObserveEpoch(leader, epoch) {
		for _, fe := range c.fes {
			fe.SetLeader(leader)
		}
	}
}

// node returns the current *Node for id (nil if unknown) under the swap
// lock; RestartNode may replace the instance at any time.
func (c *Cluster) node(id tx.NodeID) *Node {
	c.nodesMu.RLock()
	defer c.nodesMu.RUnlock()
	return c.nodes[id]
}

// nodeList returns the current node instances in node order.
func (c *Cluster) nodeList() []*Node {
	c.nodesMu.RLock()
	defer c.nodesMu.RUnlock()
	out := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.nodes[id])
	}
	return out
}

// accountOnce reports whether the caller should record client-visible
// metrics (commit/abort counters) for this transaction. Without the
// reliable layer there is no replay and every transaction is seen once;
// with it, a restarted node re-executes logged input, and only the first
// completion counts.
func (c *Cluster) accountOnce(id tx.TxnID) bool {
	if c.rel == nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.accounted[id]; dup {
		return false
	}
	c.accounted[id] = struct{}{}
	return true
}

// ReliableStats exposes the reliable layer's retransmission/dedup counters
// (zero-valued when Config.Reliable is off).
func (c *Cluster) ReliableStats() network.ReliableStats {
	if c.rel == nil {
		return network.ReliableStats{}
	}
	return c.rel.Stats()
}

// ConfigCopy returns the configuration the cluster was built with, for
// constructing a compatible replacement cluster (recovery).
func (c *Cluster) ConfigCopy() Config { return c.cfg }

// RoleGoroutines sums per-transaction role goroutines spawned across all
// nodes. Queue mode must report zero — record waits are mailbox
// continuations on the bucket workers, never parked goroutines.
func (c *Cluster) RoleGoroutines() int64 {
	var n int64
	for _, nd := range c.nodeList() {
		n += nd.RoleGoroutines()
	}
	return n
}

// Collector exposes the cluster's metrics.
func (c *Cluster) Collector() *metrics.Collector { return c.collector }

// SeqEpoch returns the current sequencer leadership epoch (0 until the
// first failover).
func (c *Cluster) SeqEpoch() uint64 {
	if c.seq == nil {
		return 0
	}
	return c.seq.Epoch()
}

// SeqLeader returns the transport node id of the current sequencer
// leader replica (LeaderNode until the first failover).
func (c *Cluster) SeqLeader() tx.NodeID {
	if c.seq == nil {
		return LeaderNode
	}
	return c.seq.LeaderID()
}

// SeqFailovers returns how many sequencer leader promotions completed.
func (c *Cluster) SeqFailovers() int64 {
	if c.seq == nil {
		return 0
	}
	return c.seq.Failovers()
}

// SeqHeartbeatMisses returns how many leader heartbeat misses the standby
// sequencers have observed.
func (c *Cluster) SeqHeartbeatMisses() int64 {
	if c.seq == nil {
		return 0
	}
	return c.seq.HeartbeatMisses()
}

// Telemetry exposes the telemetry handle the cluster was built with (nil
// when telemetry is off).
func (c *Cluster) Telemetry() *telemetry.Telemetry { return c.cfg.Telemetry }

// ReliableDepths reports the reliable layer's current queue occupancy
// (zeros when Config.Reliable is off).
func (c *Cluster) ReliableDepths() (unacked, backlog int64) {
	if c.rel == nil {
		return 0, 0
	}
	return c.rel.Depths()
}

// NetStats exposes transport byte/message accounting.
func (c *Cluster) NetStats() *network.Stats { return c.netStats }

// Start returns the cluster start time (metrics epoch).
func (c *Cluster) Start() time.Time { return c.start }

// Node returns the node with the given id (nil if unknown); used by tests
// and recovery drills. After a RestartNode the returned instance is the
// replacement, not the killed one.
func (c *Cluster) Node(id tx.NodeID) *Node { return c.node(id) }

// Active returns the currently active node set as last set by
// provisioning calls on this handle.
func (c *Cluster) Active() []tx.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]tx.NodeID(nil), c.active...)
}

// Submit enqueues a transaction request via the front-end of node via,
// returning a channel closed when the transaction commits (or aborts —
// the client gets an answer either way).
func (c *Cluster) Submit(via tx.NodeID, proc tx.Procedure) (<-chan struct{}, error) {
	if c.distributed {
		return c.submitDistributed(proc)
	}
	req := tx.NewRequest(0, proc)
	req.SubmitTime = time.Now()
	done := make(chan struct{})
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil, fmt.Errorf("engine: cluster stopped")
	}
	c.waiters[req] = done
	c.mu.Unlock()
	fe := c.fes[via]
	if fe == nil {
		c.mu.Lock()
		delete(c.waiters, req)
		c.mu.Unlock()
		return nil, fmt.Errorf("engine: submit via unknown node %d", via)
	}
	if err := fe.Submit(req); err != nil {
		c.mu.Lock()
		delete(c.waiters, req)
		c.mu.Unlock()
		return nil, err
	}
	return done, nil
}

// SubmitAndWait submits and blocks until completion.
func (c *Cluster) SubmitAndWait(via tx.NodeID, proc tx.Procedure) error {
	done, err := c.Submit(via, proc)
	if err != nil {
		return err
	}
	<-done
	return nil
}

// Provision submits a totally ordered membership change (§3.3) and
// returns its completion channel.
func (c *Cluster) Provision(add, remove []tx.NodeID) (<-chan struct{}, error) {
	c.mu.Lock()
	for _, n := range add {
		found := false
		for _, a := range c.active {
			if a == n {
				found = true
			}
		}
		if !found {
			c.active = append(c.active, n)
		}
	}
	for _, n := range remove {
		for i, a := range c.active {
			if a == n {
				c.active = append(c.active[:i], c.active[i+1:]...)
				break
			}
		}
	}
	c.mu.Unlock()
	return c.Submit(c.order[0], &tx.ProvisionProc{Add: add, Remove: remove})
}

// submitDistributed enqueues a transaction through the local session
// front-end of a distributed worker. The waiter is keyed by the front-end's
// ClientSeq stamp — assigned and registered atomically with respect to
// transmission, so a delivered batch can always correlate back, and the
// leader's gapless per-client dedup never sees a reordered stream.
func (c *Cluster) submitDistributed(proc tx.Procedure) (<-chan struct{}, error) {
	if _, ok := proc.(tx.WireSafe); !ok {
		return nil, fmt.Errorf("engine: %T is not wire-safe: procedures with closures cannot cross process boundaries (gob drops func fields silently)", proc)
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil, fmt.Errorf("engine: cluster stopped")
	}
	c.mu.Unlock()
	req := tx.NewRequest(0, proc)
	req.SubmitTime = time.Now()
	done := make(chan struct{})
	fe := c.fes[c.self]
	var stamped uint64
	err := fe.SubmitTracked(req, func(seq uint64) {
		stamped = seq
		c.mu.Lock()
		c.seqWaiters[seq] = done
		c.mu.Unlock()
	})
	if err != nil {
		c.mu.Lock()
		delete(c.seqWaiters, stamped)
		c.mu.Unlock()
		return nil, err
	}
	return done, nil
}

// completeTxn releases a finished transaction's client: locally when the
// submitting front-end lives in this process, with a MsgTxnDone notice to
// the submitting node otherwise. Delivery of the notice rides the reliable
// layer; a duplicate (replay after a committer restart) finds no pending
// entry and is a no-op.
func (c *Cluster) completeTxn(req *tx.Request) {
	if c.distributed && req.ClientSeq != 0 && req.Client != c.self {
		_ = c.tr.Send(network.Message{
			From: c.self, To: req.Client, Type: network.MsgTxnDone, Txn: req.ID,
		})
		return
	}
	c.complete(req.ID)
}

// complete is called by the committing master (or by the provision path)
// to release the client.
func (c *Cluster) complete(id tx.TxnID) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	} else if c.distributed && id > c.lastAssigned {
		// The notice beat the local scheduler to the batch that assigns
		// this ID; registration will find it here and release the client.
		if c.earlyDone == nil {
			c.earlyDone = make(map[tx.TxnID]struct{})
		}
		c.earlyDone[id] = struct{}{}
	}
	c.mu.Unlock()
	if ok {
		close(ch)
	}
}

// registerAssigned moves a waiter from pointer-keyed to ID-keyed tracking
// once the totally ordered batch reveals the assigned transaction ID.
// Exactly one node (the master candidate's registration is identical on
// all nodes) performs the registration — it is idempotent.
func (c *Cluster) registerAssigned(req *tx.Request) {
	if c.distributed {
		c.registerAssignedDistributed(req)
		return
	}
	// Session front-ends transmit private copies of each submission (so
	// two sequencer leaders never write one shared object); the waiter
	// was registered under the queued original, which the delivered copy
	// names via Origin. The lookup uses the pointer as a value only —
	// the original is never dereferenced here.
	key := req.Origin()
	c.mu.Lock()
	ch, found := c.waiters[key]
	if found {
		delete(c.waiters, key)
		c.pending[req.ID] = ch
	}
	c.mu.Unlock()
	// The sealed batch acknowledges the submission to its front-end's
	// retry queue (idempotent; replayed batches from other sessions hit
	// an empty queue).
	if fe := c.fes[req.Client]; fe != nil {
		fe.Sequenced(req)
	}
	if found {
		// Exactly one registration finds the waiter, so these cluster-scope
		// events are emitted once per transaction: the submit time (known
		// only now that the total order revealed the ID) and the assignment.
		if !req.SubmitTime.IsZero() {
			c.tracer.EmitAt(req.SubmitTime, telemetry.ClusterNode, req.ID, telemetry.PhaseEnqueued, 0)
		}
		c.tracer.Emit(telemetry.ClusterNode, req.ID, telemetry.PhaseSequenced, 0)
	}
}

// registerAssignedDistributed correlates a delivered request with the
// local waiter by its (Client, ClientSeq) stamp — the delivered object is
// a deserialized copy, so pointer identity is useless here. Requests
// submitted by other processes pass through untouched; their own engines
// perform the same correlation.
func (c *Cluster) registerAssignedDistributed(req *tx.Request) {
	found := false
	var done chan struct{}
	c.mu.Lock()
	if req.ID > c.lastAssigned {
		c.lastAssigned = req.ID
	}
	if req.Client == c.self && req.ClientSeq != 0 {
		ch, ok := c.seqWaiters[req.ClientSeq]
		if ok {
			delete(c.seqWaiters, req.ClientSeq)
			found = true
			if _, early := c.earlyDone[req.ID]; early {
				// The committer already finished this transaction and its
				// MsgTxnDone arrived before this batch was scheduled here;
				// release the client now instead of parking the waiter.
				delete(c.earlyDone, req.ID)
				done = ch
			} else {
				c.pending[req.ID] = ch
			}
		}
	}
	c.mu.Unlock()
	if done != nil {
		close(done)
	}
	if fe := c.fes[req.Client]; fe != nil {
		fe.Sequenced(req)
	}
	if found {
		if !req.SubmitTime.IsZero() {
			c.tracer.EmitAt(req.SubmitTime, telemetry.ClusterNode, req.ID, telemetry.PhaseEnqueued, 0)
		}
		c.tracer.Emit(telemetry.ClusterNode, req.ID, telemetry.PhaseSequenced, 0)
	}
}

// Pending reports the number of in-flight transactions.
func (c *Cluster) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending) + len(c.waiters) + len(c.seqWaiters)
}

// Drain flushes the sequencer and waits (up to timeout) until all
// in-flight transactions have completed *everywhere* — not just at their
// committing node: every node's lock table must be empty, so all remote
// writers, write-backs, and migrations have been applied. It reports
// whether the cluster drained; DrainDetail explains a failure.
func (c *Cluster) Drain(timeout time.Duration) bool {
	return c.DrainDetail(timeout) == nil
}

// DrainDetail is Drain with a diagnosis: on timeout the error names what
// the quiesce is stuck behind — the node and the batch sequence its
// scheduler has not consumed, a non-empty lock queue, in-flight
// transactions, or a front-end still holding unacknowledged submissions.
func (c *Cluster) DrainDetail(timeout time.Duration) error {
	if c.seq == nil {
		return fmt.Errorf("engine: drain needs the in-process sequencer; distributed workers quiesce via WorkerQuiesce")
	}
	deadline := time.Now().Add(timeout)
	var stuck error
	for {
		c.seq.Flush()
		if stuck = c.quiesceCheck(); stuck == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: drain timed out after %v: %w", timeout, stuck)
		}
		time.Sleep(time.Millisecond)
	}
}

// quiesceCheck reports why the cluster is not quiescent (nil when it is).
// The per-node diagnosis comes first because it is the most actionable: a
// scheduler that stopped consuming the sealed stream explains whatever
// transactions are still in flight behind it.
func (c *Cluster) quiesceCheck() error {
	// Quiescence needs more than "no client is waiting": every
	// replica's scheduler must also have consumed the full sealed
	// batch stream. A transaction completes when its committer
	// finishes, so a node that merely observes a batch can still be
	// routing it — and its policy replica (fusion table, placement)
	// would be a batch behind anything that fingerprints it now.
	nextSeq, _ := c.seq.Next()
	c.mu.Lock()
	down := make(map[tx.NodeID]bool, len(c.crashed))
	for id := range c.crashed {
		down[id] = true
	}
	c.mu.Unlock()
	for _, n := range c.nodeList() {
		if down[n.id] {
			continue // frozen until RestartNode catches it up
		}
		if got := n.Scheduled(); got != nextSeq {
			return fmt.Errorf("node %d stuck at batch %d (sealed stream at %d)", n.id, got, nextSeq)
		}
		if q := n.locks.QueuedKeys(); q != 0 {
			return fmt.Errorf("node %d still holds %d queued lock keys at batch %d", n.id, q, nextSeq)
		}
	}
	if p := c.Pending(); p != 0 {
		// A crashed straggler is exempt from the scheduler check above (it
		// is frozen by design), but when it is what the in-flight work
		// waits on, the diagnosis should say so.
		for _, n := range c.nodeList() {
			if down[n.id] && n.Scheduled() != nextSeq {
				return fmt.Errorf("%d transactions still in flight; node %d is crashed and stuck at batch %d (sealed stream at %d)",
					p, n.id, n.Scheduled(), nextSeq)
			}
		}
		return fmt.Errorf("%d transactions still in flight", p)
	}
	for _, id := range c.order {
		if fe := c.fes[id]; fe != nil {
			if u := fe.Unacked(); u != 0 {
				return fmt.Errorf("front-end %d holds %d unacknowledged submissions", id, u)
			}
		}
	}
	return nil
}

// Stop shuts the cluster down. In-flight transactions are abandoned;
// call Drain first for a clean quiesce.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	for _, fe := range c.fes {
		fe.Stop()
	}
	if c.seq != nil {
		c.seq.Stop()
	}
	nodes := c.nodeList()
	for _, n := range nodes {
		n.stop()
	}
	c.tr.Close()
	for _, n := range nodes {
		n.wait()
	}
}

// Fingerprint returns an order-independent hash of the entire cluster
// state: every node's storage plus every replica's fusion table. Two runs
// on the same input must produce equal fingerprints — the determinism
// guarantee of the whole stack.
func (c *Cluster) Fingerprint() uint64 {
	var acc uint64
	for _, n := range c.nodeList() {
		acc ^= n.store.Fingerprint() * 31
		if f := n.policy.Placement().Fusion; f != nil {
			acc ^= f.Fingerprint() * 131
		}
	}
	return acc
}

// NodeDigest captures one node's externally comparable state at
// quiescence: where every record lives and what the routing replica
// believes. Two runs of the same input must agree on every field for
// every node — a strictly stronger check than the cluster Fingerprint,
// which could mask compensating per-node differences.
type NodeDigest struct {
	Node tx.NodeID
	// Store is the stable digest over the node's record contents.
	Store uint64
	// Fusion is the routing replica's fusion-table fingerprint (0 when
	// the policy has no fusion table).
	Fusion uint64
	// Records and Bytes are the node's record count and value volume.
	Records int
	Bytes   int64
}

// NodeDigests returns every node's state digest in node order.
func (c *Cluster) NodeDigests() []NodeDigest {
	out := make([]NodeDigest, 0, len(c.order))
	for _, n := range c.nodeList() {
		d := NodeDigest{Node: n.id, Store: n.store.Digest()}
		d.Records, d.Bytes = n.store.Usage()
		if f := n.policy.Placement().Fusion; f != nil {
			d.Fusion = f.Fingerprint()
		}
		out = append(out, d)
	}
	return out
}

// SeqStats snapshots the in-process total-order leader's counters (zero
// value when the cluster runs without its own sequencer, i.e. distributed
// worker mode).
func (c *Cluster) SeqStats() sequencer.LeaderStats {
	if c.seq == nil {
		return sequencer.LeaderStats{}
	}
	return c.seq.Stats()
}

// SeqFlush seals the in-process leader's pending requests into one batch
// (no-op without a sequencer).
func (c *Cluster) SeqFlush() {
	if c.seq != nil {
		c.seq.Flush()
	}
}

// TotalRecords sums the record counts across all nodes; migration must
// conserve it.
func (c *Cluster) TotalRecords() int {
	total := 0
	for _, n := range c.nodeList() {
		total += n.store.Len()
	}
	return total
}

// TotalBytes sums the record value volume across all nodes; migration
// must conserve it alongside the record count.
func (c *Cluster) TotalBytes() int64 {
	var total int64
	for _, n := range c.nodeList() {
		_, b := n.store.Usage()
		total += b
	}
	return total
}

// LoadRecord seeds a record at its home partition as computed by node 0's
// placement (all replicas agree). Call before submitting transactions.
func (c *Cluster) LoadRecord(k tx.Key, v []byte) {
	home := c.node(c.order[0]).policy.Placement().Home(k)
	c.node(home).store.Write(k, v)
}

// ReadRecord locates and reads a record via current placement; returns
// nil,false if absent everywhere. Intended for tests and examples, not
// the transaction path.
func (c *Cluster) ReadRecord(k tx.Key) ([]byte, bool) {
	owner := c.node(c.order[0]).policy.Placement().Owner(k)
	if v, ok := c.node(owner).store.Read(k); ok {
		return v, true
	}
	for _, n := range c.nodeList() {
		if v, ok := n.store.Read(k); ok {
			return v, true
		}
	}
	return nil, false
}
