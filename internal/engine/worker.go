package engine

import (
	"fmt"
	"time"

	"hermes/internal/metrics"
	"hermes/internal/network"
	"hermes/internal/sequencer"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// WorkerConfig assembles one node of a multi-process cluster. Every worker
// process runs exactly one engine node over a socket transport; the
// total-order leader runs as a standalone sequencer replica in one of the
// processes (the cluster harness puts it next to worker 0).
type WorkerConfig struct {
	// Self is this process's node id; Workers is the full active node set
	// across all processes (every replica must agree on it).
	Self    tx.NodeID
	Workers []tx.NodeID
	// Leader is the transport id of the sequencer leader (LeaderNode).
	Leader tx.NodeID
	// Transport is the process's socket transport, already listening.
	// NewWorker wraps it in the reliable layer; the worker owns both and
	// closes them on Stop.
	Transport network.Transport
	// NetStats is the transport's byte/message accounting.
	NetStats *network.Stats
	// Policy builds the local routing replica; it must be the identical
	// construction in every process (and in the in-process emulation that
	// digests are compared against).
	Policy PolicyFactory
	// Incarnation, Journal, AckGate, Floors, and Recovered plumb the
	// delivery journal into the reliable layer: see network.ReliableOpts.
	Incarnation uint64
	Journal     func(network.Message)
	AckGate     func(func())
	Floors      map[tx.NodeID]network.LinkFloor
	Recovered   []network.Message
	// Executors, ExecMode, Window: as in Config.
	Executors int
	ExecMode  string
	Window    time.Duration
	// RetryTimeout/RetryCap tune the session front-end's resend pacing
	// (zero = front-end defaults).
	RetryTimeout time.Duration
	RetryCap     time.Duration
	// RetransmitBase/RetransmitCap tune the reliable layer's retransmit
	// pacing (zero = in-process defaults; see ReliableOpts).
	RetransmitBase time.Duration
	RetransmitCap  time.Duration
	// Telemetry, if non-nil, registers this process's gauges (served at
	// the control endpoint's /metrics).
	Telemetry *telemetry.Telemetry
}

// NewWorker assembles a distributed single-node cluster but does not start
// it: recovery must seed storage (SeedLocal) before the node consumes its
// replayed input. Call StartWorker when the process is ready to run.
func NewWorker(wc WorkerConfig) (*Cluster, error) {
	if wc.Policy == nil {
		return nil, fmt.Errorf("engine: worker %d: no policy factory", wc.Self)
	}
	if wc.Transport == nil {
		return nil, fmt.Errorf("engine: worker %d: no transport", wc.Self)
	}
	if len(wc.Workers) == 0 {
		return nil, fmt.Errorf("engine: worker %d: empty worker set", wc.Self)
	}
	sendTo := make([]tx.NodeID, 0, len(wc.Workers)+1)
	for _, id := range wc.Workers {
		if id != wc.Self {
			sendTo = append(sendTo, id)
		}
	}
	sendTo = append(sendTo, wc.Leader)
	rel := network.NewReliableWith(wc.Transport, network.ReliableOpts{
		RecvFor:        []tx.NodeID{wc.Self},
		SendTo:         sendTo,
		Incarnation:    wc.Incarnation,
		Journal:        wc.Journal,
		AckGate:        wc.AckGate,
		Floors:         wc.Floors,
		Recovered:      wc.Recovered,
		RetransmitBase: wc.RetransmitBase,
		RetransmitCap:  wc.RetransmitCap,
	})
	c := &Cluster{
		cfg: Config{
			Nodes:     []tx.NodeID{wc.Self},
			Active:    append([]tx.NodeID(nil), wc.Workers...),
			Policy:    wc.Policy,
			Executors: wc.Executors,
			ExecMode:  wc.ExecMode,
			Window:    wc.Window,
			Telemetry: wc.Telemetry,
		},
		tr:          rel,
		rel:         rel,
		distributed: true,
		self:        wc.Self,
		netStats:    wc.NetStats,
		nodes:       make(map[tx.NodeID]*Node, 1),
		order:       []tx.NodeID{wc.Self},
		pending:     make(map[tx.TxnID]chan struct{}),
		waiters:     make(map[*tx.Request]chan struct{}),
		seqWaiters:  make(map[uint64]chan struct{}),
		active:      append([]tx.NodeID(nil), wc.Workers...),
		crashed:     make(map[tx.NodeID]time.Time),
		seqCrashed:  tx.NoNode,
		accounted:   make(map[tx.TxnID]struct{}),
		start:       time.Now(),
	}
	if c.cfg.Window <= 0 {
		c.cfg.Window = time.Second
	}
	c.collector = metrics.NewCollector(c.start, c.cfg.Window)
	c.tracer = wc.Telemetry.Tracer()
	// Always a session front-end: across processes the leader's dedup and
	// the client-side retry queue are what make submission exactly-once.
	c.fes = map[tx.NodeID]*sequencer.Frontend{
		wc.Self: sequencer.NewSessionFrontend(wc.Self, wc.Leader, c.tr, nil,
			wc.RetryTimeout, wc.RetryCap),
	}
	c.nodes[wc.Self] = newNode(wc.Self, c, wc.Policy(c.cfg.Active))
	c.registerGauges()
	return c, nil
}

// StartWorker starts the worker's node loops; for a recovering process the
// reliable layer then begins replaying the journaled input.
func (c *Cluster) StartWorker() { c.startAll() }

// Reliable exposes the worker's reliable layer (the cluster harness's
// control plane reads its backlog).
func (c *Cluster) Reliable() *network.Reliable { return c.rel }

// SeedLocal writes k into the local store iff the local routing replica
// says k's home partition is this node, reporting whether it did. Every
// process seeds from the same deterministic record stream; the replicas
// agree on placement, so each record lands in exactly one process.
func (c *Cluster) SeedLocal(k tx.Key, v []byte) bool {
	n := c.node(c.order[0])
	if n.policy.Placement().Home(k) != n.id {
		return false
	}
	n.store.Write(k, v)
	return true
}

// WorkerQuiesceInfo is one worker process's quiescence snapshot. The
// cluster is quiescent when, in a single sweep with the leader flushed and
// idle at sealed sequence S: every worker's Scheduled == S, and every
// other field is zero. Receiver-side locks are held from scheduling until
// remote pushes and write-backs are applied, so in-flight cross-node
// messages keep QueuedLockKeys non-zero somewhere until they land.
type WorkerQuiesceInfo struct {
	// Scheduled is 1 + the sequence of the last batch the scheduler
	// consumed (== the leader's next sequence when caught up).
	Scheduled uint64
	// QueuedLockKeys is the conservative lock manager's queued-key count.
	QueuedLockKeys int
	// Pending counts transactions submitted here and not yet completed.
	Pending int
	// Unacked is the session front-end's unacknowledged submission count.
	Unacked int
	// Backlog is the reliable layer's undelivered local input (non-zero
	// while a recovering process is still replaying its journal).
	Backlog int64
}

// WorkerQuiesce snapshots the local quiescence state for the harness's
// cross-process drain sweep.
func (c *Cluster) WorkerQuiesce() WorkerQuiesceInfo {
	n := c.node(c.order[0])
	info := WorkerQuiesceInfo{
		Scheduled:      n.Scheduled(),
		QueuedLockKeys: n.locks.QueuedKeys(),
		Pending:        c.Pending(),
	}
	if fe := c.fes[c.order[0]]; fe != nil {
		info.Unacked = fe.Unacked()
	}
	if c.rel != nil {
		info.Backlog = c.rel.Backlog(c.order[0])
	}
	return info
}
