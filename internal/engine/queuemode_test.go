package engine

import (
	"testing"
	"time"

	"hermes/internal/sequencer"
	"hermes/internal/tx"
)

func newQueueCluster(t *testing.T, nodes int, pf PolicyFactory) *Cluster {
	t.Helper()
	ids := make([]tx.NodeID, nodes)
	for i := range ids {
		ids[i] = tx.NodeID(i)
	}
	c, err := New(Config{
		Nodes:    ids,
		Policy:   pf,
		Seq:      sequencer.Config{BatchSize: 8, Interval: 2 * time.Millisecond},
		ExecMode: ExecModeQueue,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestQueueModeSerializableCounters re-runs the core serializability check
// with the queue-oriented executor: concurrent conflicting increments must
// all apply exactly once under every routing policy, with no lock manager
// in the path.
func TestQueueModeSerializableCounters(t *testing.T) {
	const txns = 120
	for name, pf := range policies(4) {
		t.Run(name, func(t *testing.T) {
			c := newQueueCluster(t, 4, pf)
			loadCounters(c, testRows)
			var waits []<-chan struct{}
			for i := 0; i < txns; i++ {
				hot := tx.MakeKey(0, uint64(i%4))
				cold := tx.MakeKey(0, uint64(50+(i%100)))
				done, err := c.Submit(tx.NodeID(i%4), incProc(hot, cold))
				if err != nil {
					t.Fatal(err)
				}
				waits = append(waits, done)
			}
			if !c.Drain(20 * time.Second) {
				t.Fatalf("cluster did not drain (pending=%d)", c.Pending())
			}
			for _, w := range waits {
				select {
				case <-w:
				default:
					t.Fatal("transaction reported drained but not completed")
				}
			}
			var sum uint64
			for i := 0; i < testRows; i++ {
				if v, ok := c.ReadRecord(tx.MakeKey(0, uint64(i))); ok {
					sum += counterVal(v)
				}
			}
			if sum != 2*txns {
				t.Fatalf("counter sum = %d, want %d", sum, 2*txns)
			}
			if got := c.Collector().Committed(); got != txns {
				t.Fatalf("Committed = %d, want %d", got, txns)
			}
		})
	}
}

// TestQueueModeBreakdownHasNoLockWait: with no lock manager in the path,
// the committed-latency breakdown must report LockWait exactly zero, with
// admission time showing up in QueueWait/QueuePlan instead.
func TestQueueModeBreakdownHasNoLockWait(t *testing.T) {
	pf := policies(3)["hermes"]
	c := newQueueCluster(t, 3, pf)
	loadCounters(c, testRows)
	for i := 0; i < 50; i++ {
		if err := c.SubmitAndWait(tx.NodeID(i%3), incProc(tx.MakeKey(0, uint64(i%7)))); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("cluster did not drain")
	}
	bd := c.Collector().AvgBreakdown()
	if bd.LockWait != 0 {
		t.Fatalf("queue mode reported LockWait = %v, want 0", bd.LockWait)
	}
	if qp := c.Collector().QueuePlan(); qp.Batches == 0 {
		t.Fatal("no queue-planning cost recorded")
	}
}

// TestQueueModeGoroutineCount: queue mode must never spawn a
// per-transaction role goroutine — not even for roles that wait on inbound
// records, which ride a mailbox continuation back into the bucket pool
// instead of parking. Lock mode spawns one per involved role, so the same
// cross-node workload distinguishes the two paths; requiring remote reads
// ensures the record-waiting (continuation) path actually ran rather than
// passing vacuously.
func TestQueueModeGoroutineCount(t *testing.T) {
	run := func(t *testing.T, mode string) *Cluster {
		t.Helper()
		ids := []tx.NodeID{0, 1, 2}
		c, err := New(Config{
			Nodes:    ids,
			Policy:   policies(3)["calvin"],
			Seq:      sequencer.Config{BatchSize: 8, Interval: 2 * time.Millisecond},
			ExecMode: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Stop)
		loadCounters(c, testRows)
		for i := 0; i < 60; i++ {
			// One key owned by node 0, one by node 2: every transaction
			// needs cross-node record pushes, so record-expecting roles
			// exist on every batch.
			near := tx.MakeKey(0, uint64(i%40))
			far := tx.MakeKey(0, uint64(150+(i%40)))
			if err := c.SubmitAndWait(tx.NodeID(i%3), incProc(near, far)); err != nil {
				t.Fatal(err)
			}
		}
		if !c.Drain(20 * time.Second) {
			t.Fatalf("cluster did not drain (pending=%d)", c.Pending())
		}
		if rr := c.Collector().RemoteReads(); rr == 0 {
			t.Fatal("workload produced no remote reads; record-wait path not exercised")
		}
		return c
	}
	t.Run("queue", func(t *testing.T) {
		c := run(t, ExecModeQueue)
		if n := c.RoleGoroutines(); n != 0 {
			t.Fatalf("queue mode spawned %d role goroutines, want 0", n)
		}
	})
	t.Run("lock", func(t *testing.T) {
		c := run(t, ExecModeLock)
		if n := c.RoleGoroutines(); n == 0 {
			t.Fatal("lock mode reported zero role goroutines; counter is broken")
		}
	})
}

func TestUnknownExecModeRejected(t *testing.T) {
	pf := policies(2)["calvin"]
	_, err := New(Config{
		Nodes:    []tx.NodeID{0, 1},
		Policy:   pf,
		Seq:      sequencer.Config{BatchSize: 4, Interval: time.Millisecond},
		ExecMode: "optimistic",
	})
	if err == nil {
		t.Fatal("unknown ExecMode accepted")
	}
}
