package engine

import (
	"fmt"
	"time"

	"hermes/internal/network"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// Checkpoint is a consistent cut of the cluster per §4.3: the storage
// contents of every node after some batch, plus the command-log prefix
// needed to rebuild the (derived) routing state by replaying the
// deterministic routing algorithm. Because the engine quiesces between
// batches before snapshotting, "after batch Seq-1" is a consistent cut by
// construction.
type Checkpoint struct {
	// Seq is the first batch sequence NOT covered by the checkpoint.
	Seq uint64
	// NextTxn is the first transaction id after the checkpointed prefix.
	NextTxn tx.TxnID
	// Stores holds each node's record snapshot.
	Stores map[tx.NodeID]map[tx.Key][]byte
	// RoutingLog is the command-log prefix (batches 0..Seq-1). Routing
	// state is a pure function of it, so recovery replays routing only —
	// no re-execution — to rebuild fusion tables and placement.
	RoutingLog []*tx.Batch
}

// Checkpoint quiesces the cluster (up to timeout) and snapshots it. It
// reports failure if in-flight transactions do not drain in time.
func (c *Cluster) Checkpoint(timeout time.Duration) (*Checkpoint, error) {
	if !c.Drain(timeout) {
		return nil, fmt.Errorf("engine: cluster did not quiesce for checkpoint")
	}
	ref := c.nodes[c.order[0]].cmdlog
	prefix := ref.Since(0)
	cp := &Checkpoint{
		Seq:        uint64(len(prefix)),
		NextTxn:    1,
		Stores:     make(map[tx.NodeID]map[tx.Key][]byte, len(c.nodes)),
		RoutingLog: prefix,
	}
	for _, b := range prefix {
		for _, r := range b.Txns {
			if r.ID >= cp.NextTxn {
				cp.NextTxn = r.ID + 1
			}
		}
	}
	for id, n := range c.nodes {
		cp.Stores[id] = n.store.Checkpoint()
	}
	return cp, nil
}

// Recover builds a cluster from a checkpoint: storage is restored
// directly, routing state is rebuilt by replaying the routing algorithm
// over the checkpointed command-log prefix (§4.3's "replay the prescient
// routing and data fusion"), and then any tail batches — input logged
// after the checkpoint — are re-executed in full through ReplayBatches.
func Recover(cfg Config, cp *Checkpoint, tail []*tx.Batch) (*Cluster, error) {
	c, err := build(cfg)
	if err != nil {
		return nil, err
	}
	for id, snap := range cp.Stores {
		n, ok := c.nodes[id]
		if !ok {
			return nil, fmt.Errorf("engine: checkpoint covers unknown node %d", id)
		}
		n.store.Restore(snap)
	}
	// Rebuild derived routing state on every replica, and seed the
	// command logs so post-recovery appends continue the sequence.
	for _, n := range c.nodes {
		for _, b := range cp.RoutingLog {
			router.BuildPlan(n.policy, b)
			if err := n.cmdlog.Append(b); err != nil {
				return nil, fmt.Errorf("engine: reseeding command log: %w", err)
			}
		}
	}
	// Resume the total order after the checkpointed prefix and the tail.
	nextSeq := cp.Seq
	nextTxn := cp.NextTxn
	for _, b := range tail {
		if b.Seq != nextSeq {
			return nil, fmt.Errorf("engine: tail batch %d out of order, want %d", b.Seq, nextSeq)
		}
		nextSeq++
		for _, r := range b.Txns {
			if r.ID >= nextTxn {
				nextTxn = r.ID + 1
			}
		}
	}
	c.leader.SetNext(nextSeq, nextTxn)
	c.startAll()
	if len(tail) > 0 {
		if err := c.ReplayBatches(tail); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// ReplayBatches re-delivers pre-formed, totally ordered batches to every
// node, preserving the original batch boundaries and transaction ids —
// the property that makes replayed routing identical to the original run.
// It blocks until the cluster quiesces.
func (c *Cluster) ReplayBatches(batches []*tx.Batch) error {
	if len(batches) == 0 {
		return nil
	}
	for _, b := range batches {
		for _, n := range c.cfg.Nodes {
			if err := c.tr.Send(network.Message{
				From: LeaderNode, To: n, Type: network.MsgSeqDeliver,
				Seq: b.Seq, Batch: b,
			}); err != nil {
				return err
			}
		}
	}
	// Wait until every node has logged the last replayed batch (so the
	// quiescence check below cannot fire in the delivery gap), then
	// drain execution.
	wantSeq := batches[len(batches)-1].Seq + 1
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for _, n := range c.nodes {
			if n.scheduled.Load() < wantSeq {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: replay delivery stalled")
		}
		time.Sleep(time.Millisecond)
	}
	if !c.Drain(30 * time.Second) {
		return fmt.Errorf("engine: replay did not quiesce")
	}
	return nil
}

// TailSince returns the logged batches with sequence ≥ seq from the
// reference node's command log (for handing to Recover).
func (c *Cluster) TailSince(seq uint64) []*tx.Batch {
	return c.nodes[c.order[0]].cmdlog.Since(seq)
}
