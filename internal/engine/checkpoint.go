package engine

import (
	"fmt"
	"time"

	"hermes/internal/network"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// Checkpoint is a consistent cut of the cluster per §4.3: the storage
// contents of every node after some batch, plus a snapshot of the derived
// routing state at that point. Because the engine quiesces between batches
// before snapshotting, "after batch Seq-1" is a consistent cut by
// construction.
//
// The routing snapshot replaces replay-from-genesis: every policy's
// cross-batch state is exactly its Placement (override map, active set,
// fusion table), and all replicas agree on it at a quiesced cut, so one
// snapshot restores every replica. That is what lets a successful
// checkpoint truncate the command log — nothing before Seq is ever needed
// again.
type Checkpoint struct {
	// Seq is the first batch sequence NOT covered by the checkpoint.
	Seq uint64
	// NextTxn is the first transaction id after the checkpointed prefix.
	NextTxn tx.TxnID
	// Stores holds each node's record snapshot.
	Stores map[tx.NodeID]map[tx.Key][]byte
	// Routing is the placement snapshot shared by all replicas at the cut.
	Routing *router.PlacementState
	// Delivered records, per node, the reliable layer's delivery watermark
	// at the cut (how many transport messages the node had consumed). A
	// restarted node rewinds its delivery log to this watermark and
	// re-receives everything after it. Nil when the cluster runs without
	// the reliable layer. With standbys configured it also covers the
	// sequencer replica endpoints, so RestartLeader can replay them.
	Delivered map[tx.NodeID]uint64
	// SeqEpoch and SeqLeader snapshot the sequencer leadership view at the
	// cut; a restarted sequencer replica starts from them before its
	// replayed log catches it up with any later promotions.
	SeqEpoch  uint64
	SeqLeader tx.NodeID
	// SeqClients records the leader's per-client sealed watermarks at the
	// cut (the (Client, ClientSeq) dedup floor; everything at or below is
	// sealed and must never be sequenced again).
	SeqClients map[tx.NodeID]uint64
}

// Checkpoint quiesces the cluster (up to timeout) and snapshots it,
// truncating the command logs (and, in reliable mode, the delivery logs)
// behind the cut. It reports failure if in-flight transactions do not
// drain in time.
func (c *Cluster) Checkpoint(timeout time.Duration) (*Checkpoint, error) {
	if err := c.DrainDetail(timeout); err != nil {
		return nil, fmt.Errorf("engine: cluster did not quiesce for checkpoint: %w", err)
	}
	nodes := c.nodeList()
	seq, nextTxn := c.seq.Next()
	cp := &Checkpoint{
		Seq:        seq,
		NextTxn:    nextTxn,
		Stores:     make(map[tx.NodeID]map[tx.Key][]byte, len(nodes)),
		Routing:    nodes[0].policy.Placement().Snapshot(),
		SeqEpoch:   c.seq.Epoch(),
		SeqLeader:  c.seq.LeaderID(),
		SeqClients: c.seq.ClientHigh(),
	}
	for _, n := range nodes {
		cp.Stores[n.id] = n.store.Checkpoint()
	}
	if c.rel != nil {
		cp.Delivered = make(map[tx.NodeID]uint64, len(nodes)+c.seq.Size())
		for _, n := range nodes {
			cp.Delivered[n.id] = c.rel.Delivered(n.id)
		}
		// The sequencer replicas' watermarks too: RestartLeader rewinds a
		// killed replica's delivery log to the one recorded here.
		for _, id := range c.seq.Nodes() {
			cp.Delivered[id] = c.rel.Delivered(id)
		}
	}
	// The snapshot covers everything before Seq / the watermarks, so the
	// logs can drop it (the satellite fix for unbounded log growth).
	for _, n := range nodes {
		n.cmdlog.Truncate(cp.Seq)
	}
	if c.rel != nil {
		for id, wm := range cp.Delivered {
			c.rel.TruncateDelivered(id, wm)
		}
	}
	// Replicas may likewise drop retained sealed batches the checkpoint
	// now covers — a promotion never needs to re-deliver below the cut.
	c.seq.Prune(cp.Seq)
	c.mu.Lock()
	c.lastCP = cp
	c.mu.Unlock()
	return cp, nil
}

// LastCheckpoint returns the most recent checkpoint taken on this cluster
// (nil if none); RestartNode replays from it.
func (c *Cluster) LastCheckpoint() *Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastCP
}

// Recover builds a cluster from a checkpoint: storage and placement state
// are restored directly on every replica, the total order resumes after
// the checkpointed prefix, and then any tail batches — input logged after
// the checkpoint — are re-executed in full through ReplayBatches.
//
// The returned cluster has no checkpoint of its own yet (the delivery
// watermarks in cp refer to the dead cluster's transport); take a fresh
// Checkpoint before using CrashNode on it.
func Recover(cfg Config, cp *Checkpoint, tail []*tx.Batch) (*Cluster, error) {
	c, err := build(cfg)
	if err != nil {
		return nil, err
	}
	// The transport (and the reliable layer's goroutines, if configured)
	// exist as of build; error paths must tear them down.
	fail := func(err error) (*Cluster, error) {
		c.tr.Close()
		return nil, err
	}
	for id, snap := range cp.Stores {
		n := c.node(id)
		if n == nil {
			return fail(fmt.Errorf("engine: checkpoint covers unknown node %d", id))
		}
		n.store.Restore(snap)
	}
	for _, n := range c.nodeList() {
		if cp.Routing != nil {
			n.policy.Placement().Restore(cp.Routing)
		}
		// The scheduler cursor starts at the cut so quiescence checks and
		// crash triggers measure post-checkpoint progress.
		n.scheduled.Store(cp.Seq)
	}
	// Resume the total order after the checkpointed prefix and the tail.
	nextSeq := cp.Seq
	nextTxn := cp.NextTxn
	for _, b := range tail {
		if b.Seq != nextSeq {
			return fail(fmt.Errorf("engine: tail batch %d out of order, want %d", b.Seq, nextSeq))
		}
		nextSeq++
		for _, r := range b.Txns {
			if r.ID >= nextTxn {
				nextTxn = r.ID + 1
			}
		}
	}
	// Every replica agrees on where the order resumes; the recovered
	// cluster's sequencer starts a fresh epoch-0 group (client sessions do
	// not survive whole-cluster recovery — the front-ends are new too).
	c.seq.SetNext(nextSeq, nextTxn)
	c.startAll()
	if len(tail) > 0 {
		if err := c.ReplayBatches(tail); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// ReplayBatches re-delivers pre-formed, totally ordered batches to every
// node, preserving the original batch boundaries and transaction ids —
// the property that makes replayed routing identical to the original run.
// It blocks until the cluster quiesces.
func (c *Cluster) ReplayBatches(batches []*tx.Batch) error {
	if len(batches) == 0 {
		return nil
	}
	for _, b := range batches {
		for _, n := range c.cfg.Nodes {
			if err := c.tr.Send(network.Message{
				From: LeaderNode, To: n, Type: network.MsgSeqDeliver,
				Seq: b.Seq, Batch: b,
			}); err != nil {
				return err
			}
		}
	}
	// Wait until every node has logged the last replayed batch (so the
	// quiescence check below cannot fire in the delivery gap), then
	// drain execution.
	wantSeq := batches[len(batches)-1].Seq + 1
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for _, n := range c.nodeList() {
			if n.scheduled.Load() < wantSeq {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: replay delivery stalled")
		}
		time.Sleep(time.Millisecond)
	}
	if !c.Drain(30 * time.Second) {
		return fmt.Errorf("engine: replay did not quiesce")
	}
	return nil
}

// TailSince returns the logged batches with sequence ≥ seq from the
// reference node's command log (for handing to Recover).
func (c *Cluster) TailSince(seq uint64) []*tx.Batch {
	return c.node(c.order[0]).cmdlog.Since(seq)
}
