package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/lock"
	"hermes/internal/network"
	"hermes/internal/qexec"
	"hermes/internal/router"
	"hermes/internal/sequencer"
	"hermes/internal/storage"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// Node is one emulated machine: storage shard, deterministic lock
// manager, routing-policy replica, command log, and the scheduler /
// executor goroutines.
type Node struct {
	id      tx.NodeID
	cluster *Cluster
	store   *storage.Store
	// locks is the admission engine: the conservative lock manager in
	// "lock" mode, the queue-oriented executor in "queue" mode.
	locks  lock.Granter
	qx     *qexec.Executor // non-nil iff ExecMode == queue
	policy router.Policy
	cmdlog *storage.CommandLog

	batches chan *tx.Batch
	// execSem bounds concurrent transaction execution (nil = unbounded).
	execSem chan struct{}
	// scheduled is 1 + the sequence of the last batch fully handed to
	// the lock manager; quiescence checks compare it with the log.
	scheduled atomic.Uint64

	mailMu sync.Mutex
	mail   map[tx.TxnID]*mailbox

	// roleGoroutines counts per-transaction role goroutines ever spawned.
	// Queue mode must keep this at zero: record waits are mailbox
	// continuations, not parked goroutines (the regression test keys on it).
	roleGoroutines atomic.Int64

	quit chan struct{}
	wg   sync.WaitGroup
}

func newNode(id tx.NodeID, c *Cluster, policy router.Policy) *Node {
	n := &Node{
		id:      id,
		cluster: c,
		store:   storage.NewStore(),
		policy:  policy,
		cmdlog:  storage.NewCommandLog(),
		batches: make(chan *tx.Batch, 1024),
		mail:    make(map[tx.TxnID]*mailbox),
		quit:    make(chan struct{}),
	}
	executors := c.cfg.Executors
	if executors == 0 {
		executors = 4
	}
	if c.cfg.ExecMode == ExecModeQueue {
		// Queue mode: the executor pool becomes the bucket-worker pool and
		// admission itself is the concurrency bound, so the semaphore is
		// disabled (roles with no admission wait run inline on the bucket
		// workers; the rest are short-lived goroutines gated by grants).
		workers := executors
		if workers < 0 {
			workers = 8
		}
		n.qx = qexec.New(qexec.Config{Workers: workers})
		n.locks = n.qx
	} else {
		n.locks = lock.NewManager()
		if executors > 0 {
			n.execSem = make(chan struct{}, executors)
		}
	}
	return n
}

// execSlot claims an executor slot (no-op when unbounded), giving up when
// the node shuts down so a crash cannot strand role goroutines behind a
// saturated pool; release with execDone. It reports whether the slot was
// claimed.
func (n *Node) execSlot() bool {
	if n.execSem == nil {
		return true
	}
	select {
	case n.execSem <- struct{}{}:
		return true
	case <-n.quit:
		return false
	}
}

func (n *Node) execDone() {
	if n.execSem != nil {
		<-n.execSem
	}
}

// Store exposes the node's storage (tests, recovery, examples).
func (n *Node) Store() *storage.Store { return n.store }

// Scheduled reports 1 + the sequence of the last batch this node's
// scheduler fully handed to the lock manager; crash schedules use it to
// trigger kills at deterministic points in the batch stream.
func (n *Node) Scheduled() uint64 { return n.scheduled.Load() }

// Policy exposes the node's routing replica (tests, stats).
func (n *Node) Policy() router.Policy { return n.policy }

// CommandLog exposes the node's input log (recovery drills).
func (n *Node) CommandLog() *storage.CommandLog { return n.cmdlog }

func (n *Node) start() {
	n.wg.Add(2)
	go n.recvLoop()
	go n.schedLoop()
}

func (n *Node) stop() {
	select {
	case <-n.quit:
	default:
		close(n.quit)
	}
}

func (n *Node) wait() {
	n.wg.Wait()
	if n.qx != nil {
		// Joining the bucket workers also joins any inline role still
		// running on one of them; entries left queued are abandoned, the
		// same semantics as a crashed node's lock table.
		n.qx.Close()
	}
}

// recvLoop dispatches transport messages: totally ordered batches go to
// the scheduler queue (and the command log); per-transaction record
// traffic goes to mailboxes.
func (n *Node) recvLoop() {
	defer n.wg.Done()
	inbox := n.cluster.tr.Recv(n.id)
	for {
		select {
		case <-n.quit:
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			switch m.Type {
			case network.MsgSeqDeliver:
				if m.Batch == nil {
					continue
				}
				// Out-of-order delivery would mean a broken total-order
				// layer; the error is surfaced by refusing the batch.
				if err := n.cmdlog.Append(m.Batch); err != nil {
					continue
				}
				// Ack the sender, not a fixed leader id: after a failover
				// the batch stream comes from the promoted standby.
				sequencer.Ack(n.id, m.From, n.cluster.tr, m.Seq)
				if n.cluster.tracer.Enabled() {
					for _, req := range m.Batch.Txns {
						n.cluster.tracer.Emit(n.id, req.ID, telemetry.PhaseBatched, int64(m.Batch.Seq))
					}
				}
				select {
				case n.batches <- m.Batch:
				case <-n.quit:
					return
				}
			case network.MsgSeqEpoch:
				n.cluster.noteLeader(m.From, m.Epoch)
			case network.MsgTxnDone:
				// A remote committer finished a transaction this process
				// submitted (distributed mode only). At-least-once delivery:
				// a duplicate finds no pending entry.
				n.cluster.complete(m.Txn)
			case network.MsgRecordPush, network.MsgReadBroadcast, network.MsgWriteBack, network.MsgMigrationChunk:
				n.mailboxFor(m.Txn).put(m.Records)
			}
		}
	}
}

// schedLoop is the deterministic scheduler (Fig. 4(b)): it routes each
// batch with the node's policy replica, acquires locks for every route in
// total order (conservative ordered locking), and hands role jobs to
// executor goroutines.
func (n *Node) schedLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.quit:
			return
		case b, ok := <-n.batches:
			if !ok {
				return
			}
			arrival := time.Now()
			plan := router.BuildPlan(n.policy, b)
			// Routing cost (§3.2.4): how much scheduler time the batch
			// analysis itself consumed, before any locking or execution.
			n.cluster.collector.RecordRouting(len(b.Txns), time.Since(arrival))
			if n.qx != nil {
				n.scheduleQueue(plan, arrival)
			} else {
				for _, rt := range plan.Routes {
					n.schedule(rt, arrival)
				}
			}
			n.scheduled.Store(b.Seq + 1)
		}
	}
}

// schedule computes this node's role in the route, acquires the locks the
// role needs (in total order), and spawns the role job.
func (n *Node) schedule(rt *router.Route, arrival time.Time) {
	// Completion tracking: the same registration runs on every node and
	// is idempotent; the committing role closes the client channel.
	n.cluster.registerAssigned(rt.Txn)

	if rt.Mode == router.Provision {
		// The membership change itself took effect inside BuildPlan on
		// every replica; acknowledge the client here. Any attached
		// eviction migrations still execute below under locks.
		if n.isCommitter(rt) {
			n.cluster.completeTxn(rt.Txn)
		}
		if len(rt.Migrations) == 0 {
			return
		}
	}

	role := n.roleFor(rt)
	if !role.involved() {
		return
	}
	if n.cluster.tracer.Enabled() {
		master := int64(-1)
		if rt.Mode == router.SingleMaster {
			master = int64(rt.Master)
		}
		n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseRouted, master)
	}
	grant := n.locks.Acquire(rt.Txn.ID, role.shared, role.excl)
	n.roleGoroutines.Add(1)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.run(rt, role, grant, arrival, time.Time{}, 0)
	}()
}

// RoleGoroutines reports how many per-transaction role goroutines this
// node has ever spawned (zero in queue mode).
func (n *Node) RoleGoroutines() int64 { return n.roleGoroutines.Load() }

// scheduleQueue is the queue-mode scheduler: it derives every role for the
// batch first (planning), then admits the whole batch into the per-key
// queues in one call. Every role runs *inline* on the bucket worker that
// completes its rendezvous — no goroutine spawn, no channel handoff. Roles
// that expect inbound records split at the mailbox instead of parking: the
// rendezvous worker runs Phase 1 and registers a continuation that the
// record receiver re-submits to the bucket pool when the last record
// lands, so a mailbox wait never stalls a bucket worker and never holds a
// goroutine either.
func (n *Node) scheduleQueue(plan *router.Plan, arrival time.Time) {
	planStart := time.Now()
	type job struct {
		rt   *router.Route
		role *role
	}
	jobs := make([]job, 0, len(plan.Routes))
	ops := make([]*qexec.Op, 0, len(plan.Routes))
	for _, rt := range plan.Routes {
		n.cluster.registerAssigned(rt.Txn)
		if rt.Mode == router.Provision {
			if n.isCommitter(rt) {
				n.cluster.completeTxn(rt.Txn)
			}
			if len(rt.Migrations) == 0 {
				continue
			}
		}
		role := n.roleFor(rt)
		if !role.involved() {
			continue
		}
		if n.cluster.tracer.Enabled() {
			master := int64(-1)
			if rt.Mode == router.SingleMaster {
				master = int64(rt.Master)
			}
			n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseRouted, master)
		}
		jobs = append(jobs, job{rt: rt, role: role})
		ops = append(ops, &qexec.Op{ID: rt.Txn.ID, Shared: role.shared, Excl: role.excl})
	}
	planDur := time.Since(planStart)
	var planShare time.Duration
	if len(ops) > 0 {
		planShare = planDur / time.Duration(len(ops))
		n.cluster.collector.RecordQueuePlan(len(ops), planDur)
	}
	admitted := time.Now()
	for i := range jobs {
		rt, role := jobs[i].rt, jobs[i].role
		// Inline runs are joined via qx.Close() in wait(), not the node
		// WaitGroup: if the node crashes before the rendezvous, the closure
		// simply never fires.
		if role.expectRecords > 0 {
			ops[i].OnReady = func() {
				n.runQueuedSplit(rt, role, arrival, admitted, planShare)
			}
		} else {
			ops[i].OnReady = func() {
				n.run(rt, role, nil, arrival, admitted, planShare)
			}
		}
	}
	_ = n.qx.AdmitBatch(ops)
}

// isCommitter reports whether this node is the one that reports
// completion to the client: the master for single-master routes, the
// lowest writer for multi-master, the first active node for provisioning.
func (n *Node) isCommitter(rt *router.Route) bool {
	switch rt.Mode {
	case router.SingleMaster:
		return rt.Master == n.id
	case router.MultiMaster:
		return len(rt.Writers) > 0 && rt.Writers[0] == n.id
	case router.Provision:
		a := n.policy.Placement().Active()
		return len(a) > 0 && a[0] == n.id
	}
	return false
}

// role captures everything a node must do for one route.
type role struct {
	// lock sets on this node.
	shared, excl []tx.Key

	// master / writer duties.
	isMaster bool // single-master execution site
	isWriter bool // multi-master executor
	// expectRecords is how many records must arrive before execution or
	// completion (pushes at the master/writer, write-backs and eviction
	// arrivals at owners).
	expectRecords int

	// pushTo maps destination node -> keys this node must push there
	// (remote reads and outbound migrations).
	pushTo map[tx.NodeID][]tx.Key
	// deleteAfterPush lists keys leaving this node (migration sources).
	deleteAfterPush []tx.Key
	// insertArrivals lists keys arriving into this node's storage
	// (migration destinations), excluding those handled by the master
	// execution path.
	insertArrivals []tx.Key
	// writeBackApply lists written keys this node owns that the master
	// will send back after execution.
	writeBackApply []tx.Key
	// outMigrations lists migrations whose source is this node and whose
	// record must carry post-execution values (master-side outbound
	// moves, e.g. T-Part's return-home of a key it just wrote).
	outMigrations []router.Migration
}

func (r *role) involved() bool {
	return len(r.shared)+len(r.excl) > 0 || r.isMaster || r.isWriter ||
		len(r.pushTo) > 0 || len(r.insertArrivals) > 0
}

// roleFor derives this node's role from a route. Every node derives roles
// from the identical plan, so the role sets agree globally.
func (n *Node) roleFor(rt *router.Route) *role {
	r := &role{pushTo: map[tx.NodeID][]tx.Key{}}
	req := rt.Txn
	writes := req.WriteSet()
	access := req.AccessSet()

	writeBack := map[tx.Key]bool{}
	for _, k := range rt.WriteBack {
		writeBack[k] = true
	}

	switch rt.Mode {
	case router.MultiMaster:
		for _, w := range rt.Writers {
			if w == n.id {
				r.isWriter = true
			}
		}
		for _, k := range access {
			owner := rt.Owners.Get(k)
			isWrite := tx.ContainsKey(writes, k)
			if owner == n.id {
				if isWrite {
					r.excl = append(r.excl, k)
				} else {
					r.shared = append(r.shared, k)
				}
				// Owners broadcast their read-set fragments to writers.
				if tx.ContainsKey(req.ReadSet(), k) {
					for _, w := range rt.Writers {
						if w != n.id {
							r.pushTo[w] = append(r.pushTo[w], k)
						}
					}
				}
			}
			if r.isWriter && owner != n.id && tx.ContainsKey(req.ReadSet(), k) {
				r.expectRecords++
			}
		}

	case router.SingleMaster, router.Provision:
		master := rt.Master
		r.isMaster = master == n.id && rt.Mode == router.SingleMaster
		// A key may appear in more than one migration of the same route
		// (e.g. T-Part moves a record in for execution and back home at
		// batch end). Classify per migration, from this node's viewpoint.
		outOfHere := map[tx.Key]bool{} // pre-exec departures from this node
		for _, m := range rt.Migrations {
			if m.From == m.To {
				continue
			}
			inAccess := tx.ContainsKey(access, m.Key)
			if m.From == n.id {
				if n.id == master {
					// Outbound from the execution site: pushed after
					// execution so it carries post-execution values.
					r.excl = appendKeyOnce(r.excl, m.Key)
					r.outMigrations = append(r.outMigrations, m)
				} else {
					outOfHere[m.Key] = true
					r.excl = appendKeyOnce(r.excl, m.Key)
					r.pushTo[m.To] = append(r.pushTo[m.To], m.Key)
					r.deleteAfterPush = append(r.deleteAfterPush, m.Key)
					// The master still needs the value if the key is part
					// of the transaction and the move itself isn't toward
					// the master.
					if inAccess && m.To != master {
						r.pushTo[master] = append(r.pushTo[master], m.Key)
					}
				}
			}
			if m.To == n.id && m.From != n.id {
				if n.id == master && inAccess {
					// Inbound data-fusion migration at the execution
					// site: the access loop below counts the expected
					// record and runMaster inserts it.
					r.excl = appendKeyOnce(r.excl, m.Key)
				} else {
					// Arrival outside the execution path (eviction home,
					// cold-chunk destination, return-home target).
					r.excl = appendKeyOnce(r.excl, m.Key)
					r.insertArrivals = append(r.insertArrivals, m.Key)
					r.expectRecords++
				}
			}
		}
		// Access-set keys. Keys absent from Owners take no part in the
		// route (e.g. chunk keys a cold migration skipped because they
		// are fusion-tracked, §3.3).
		for _, k := range access {
			owner, part := rt.Owners.Lookup(k)
			if !part {
				continue
			}
			isWrite := tx.ContainsKey(writes, k)
			switch {
			case owner == n.id:
				if outOfHere[k] {
					break // push/delete already arranged above
				}
				if isWrite {
					r.excl = appendKeyOnce(r.excl, k)
					if n.id != master && writeBack[k] {
						// Send current value to the master, then apply
						// the write-back it returns.
						r.pushTo[master] = append(r.pushTo[master], k)
						r.writeBackApply = append(r.writeBackApply, k)
						r.expectRecords++
					}
				} else {
					r.shared = append(r.shared, k)
					if n.id != master {
						r.pushTo[master] = append(r.pushTo[master], k)
					}
				}
			case n.id == master:
				// The record arrives from its owner (directly or via an
				// inbound migration push).
				r.expectRecords++
			}
		}
	}
	r.shared = tx.NormalizeKeys(r.shared)
	r.excl = tx.NormalizeKeys(r.excl)
	// A key needed both shared and exclusive collapses to exclusive
	// inside the lock manager; remove duplicates from shared here so the
	// accounting in expectRecords stays exact.
	r.shared = subtractKeys(r.shared, r.excl)
	return r
}

func appendKeyOnce(ks []tx.Key, k tx.Key) []tx.Key {
	for _, e := range ks {
		if e == k {
			return ks
		}
	}
	return append(ks, k)
}

func subtractKeys(a, b []tx.Key) []tx.Key {
	out := a[:0]
	for _, k := range a {
		if !tx.ContainsKey(b, k) {
			out = append(out, k)
		}
	}
	return out
}

// mailboxFor returns (creating on demand) the mailbox for a transaction.
func (n *Node) mailboxFor(id tx.TxnID) *mailbox {
	n.mailMu.Lock()
	defer n.mailMu.Unlock()
	mb, ok := n.mail[id]
	if !ok {
		mb = newMailbox()
		n.mail[id] = mb
	}
	return mb
}

func (n *Node) dropMailbox(id tx.TxnID) {
	n.mailMu.Lock()
	delete(n.mail, id)
	n.mailMu.Unlock()
}

// mailbox accumulates records pushed to this node for one transaction.
// Consumers either block on waitFor (lock mode's waiting goroutine) or
// register a continuation with subscribe (queue mode's split path).
type mailbox struct {
	mu     sync.Mutex
	recs   map[tx.Key][]byte
	notify chan struct{}
	// want/cont are the registered continuation: when at least want
	// records have accumulated, put fires cont once with the record map.
	want int
	cont func(map[tx.Key][]byte)
}

func newMailbox() *mailbox {
	return &mailbox{recs: map[tx.Key][]byte{}, notify: make(chan struct{}, 1)}
}

func (m *mailbox) put(records []network.Record) {
	m.mu.Lock()
	for _, r := range records {
		m.recs[r.Key] = r.Value
	}
	var fire func(map[tx.Key][]byte)
	var out map[tx.Key][]byte
	if m.cont != nil && len(m.recs) >= m.want {
		fire, out = m.cont, m.recs
		m.cont = nil
	}
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
	if fire != nil {
		// Outside the mutex: the continuation re-submits into the bucket
		// pool and must not deadlock against a concurrent put.
		fire(out)
	}
}

// subscribe registers fn to fire once at least want records have arrived.
// If they already have, it returns (records, true) and registers nothing —
// the caller runs the continuation itself. fn fires on the goroutine that
// delivers the final record.
func (m *mailbox) subscribe(want int, fn func(map[tx.Key][]byte)) (map[tx.Key][]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.recs) >= want {
		return m.recs, true
	}
	m.want, m.cont = want, fn
	return nil, false
}

// waitFor blocks until at least want records have arrived (or quit
// closes) and returns the record map.
func (m *mailbox) waitFor(want int, quit <-chan struct{}) map[tx.Key][]byte {
	for {
		m.mu.Lock()
		if len(m.recs) >= want {
			out := m.recs
			m.mu.Unlock()
			return out
		}
		m.mu.Unlock()
		select {
		case <-m.notify:
		case <-quit:
			return nil
		}
	}
}
