package engine

import (
	"time"

	"hermes/internal/lock"
	"hermes/internal/metrics"
	"hermes/internal/network"
	"hermes/internal/router"
	"hermes/internal/storage"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// run executes this node's role for one routed transaction. In lock mode
// it is spawned per role and blocks on its grant; deadlock freedom comes
// from the conservative ordered locking (locks were acquired in total
// order by the scheduler) plus the fact that record waits only ever point
// "toward" nodes that will push unconditionally once their own locks are
// granted. In queue mode it is either invoked inline by the bucket worker
// that completed the rendezvous (grant == nil — admission is already
// complete) or spawned with a grant to wait on; admitted and planShare
// carry the batch-admission timestamp and this transaction's share of the
// queue-planning cost so the latency breakdown stays honest across modes.
func (n *Node) run(rt *router.Route, role *role, grant lock.Granted, arrival time.Time, admitted time.Time, planShare time.Duration) {
	// The in-flight gauge spans one transaction's whole execution window
	// (lock wait included), counted once at the committing node.
	if len(rt.Migrations) > 0 && rt.Mode != router.Provision && n.isCommitter(rt) {
		n.cluster.collector.AddMigrationsInFlight(1)
		defer n.cluster.collector.AddMigrationsInFlight(-1)
	}
	dispatch := admitted
	if dispatch.IsZero() {
		dispatch = time.Now()
	}
	if grant != nil {
		select {
		case <-grant.Done():
		case <-n.quit:
			return
		}
	}
	granted := time.Now()
	n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseLocked, int64(granted.Sub(dispatch)))

	storageTime, ok := n.pushOwned(rt, role)
	if !ok {
		return // node shutting down
	}

	// Phase 2: wait for inbound records if any are expected.
	var remote map[tx.Key][]byte
	var remoteReady time.Time
	if role.expectRecords > 0 {
		remote = n.mailboxFor(rt.Txn.ID).waitFor(role.expectRecords, n.quit)
		if remote == nil {
			return // shutting down
		}
		remoteReady = time.Now()
		n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseRemoteReady, int64(role.expectRecords))
	} else {
		remoteReady = granted
	}

	n.finish(rt, role, remote, arrival, dispatch, granted, remoteReady, storageTime, planShare)
}

// pushOwned is Phase 1: push owned records (remote reads, write-back
// inputs, and migration payloads) to their destinations, deleting outbound
// migration sources. Serving records is real work for the owner: it
// occupies an executor slot and consumes a fraction of ExecCost, so
// systems that repeatedly pull from a hot node (G-Store's and T-Part's
// per-batch pulls) keep loading it, while a migration frees it — the
// effect behind Figs. 11-14. It reports false if the node is shutting
// down.
func (n *Node) pushOwned(rt *router.Route, role *role) (time.Duration, bool) {
	var storageTime time.Duration
	if len(role.pushTo) > 0 {
		if !n.execSlot() {
			return 0, false
		}
		if d := n.cluster.cfg.ExecCost / 4; d > 0 {
			t0 := time.Now()
			time.Sleep(d)
			n.cluster.collector.AddBusy(int(n.id), time.Since(t0))
		}
	}
	for dest, keys := range role.pushTo {
		recs := make([]network.Record, 0, len(keys))
		for _, k := range keys {
			t0 := time.Now()
			v, ok := n.store.Read(k)
			n.sleepStorage()
			storageTime += time.Since(t0)
			if !ok {
				v = nil // absent records travel as nil and materialize on write
			}
			recs = append(recs, network.Record{Key: k, Value: v})
		}
		_ = n.cluster.tr.Send(network.Message{
			From: n.id, To: dest, Type: network.MsgRecordPush,
			Txn: rt.Txn.ID, Records: recs,
		})
	}
	for _, k := range role.deleteAfterPush {
		n.store.Delete(k)
	}
	if len(role.pushTo) > 0 {
		n.execDone()
	}
	return storageTime, true
}

// finish is Phase 3 plus commit accounting: the role-specific work, lock
// release, and — at the committing role — the latency breakdown and commit
// report. remote is nil when the role expected no records.
func (n *Node) finish(rt *router.Route, role *role, remote map[tx.Key][]byte,
	arrival, dispatch, granted, remoteReady time.Time,
	storageTime time.Duration, planShare time.Duration,
) {
	// Phase 3: role-specific work.
	aborted := false
	switch {
	case role.isMaster:
		if !n.execSlot() {
			return
		}
		var st time.Duration
		st, aborted = n.runMaster(rt, role, remote)
		storageTime += st
		n.execDone()
		n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseExecuted, 0)
	case role.isWriter:
		if !n.execSlot() {
			return
		}
		var st time.Duration
		st, aborted = n.runWriter(rt, remote)
		storageTime += st
		n.execDone()
		n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseExecuted, 0)
	default:
		// Pure source / arrival role: insert migration arrivals and apply
		// write-backs, then release.
		var migBytes int64
		for _, k := range role.insertArrivals {
			if v, ok := remote[k]; ok && v != nil {
				t0 := time.Now()
				n.store.Write(k, v)
				n.sleepStorage()
				storageTime += time.Since(t0)
				migBytes += int64(len(v))
			}
		}
		if len(role.insertArrivals) > 0 {
			n.cluster.collector.RecordMigrationBytes(int(migBytes))
			n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseMigratedIn, migBytes)
		}
		for _, k := range role.writeBackApply {
			if v, ok := remote[k]; ok {
				t0 := time.Now()
				n.store.Write(k, v)
				n.sleepStorage()
				storageTime += time.Since(t0)
			}
		}
	}

	n.locks.Release(rt.Txn.ID)
	n.dropMailbox(rt.Txn.ID)
	n.cluster.collector.AddBusy(int(n.id), storageTime)

	// Commit reporting happens exactly once, at the committing role.
	// Provisioning control transactions were acknowledged by the
	// scheduler, and logic aborts were counted by the executing role;
	// neither counts as a user commit (the client is answered either
	// way).
	if rt.Mode != router.Provision && n.isCommitter(rt) {
		if !aborted && n.cluster.accountOnce(rt.Txn.ID) {
			done := time.Now()
			total := done.Sub(rt.Txn.SubmitTime)
			if rt.Txn.SubmitTime.IsZero() {
				total = done.Sub(arrival)
			}
			bd := metrics.Breakdown{
				Scheduling: dispatch.Sub(arrival),
				RemoteWait: remoteReady.Sub(granted),
				Storage:    storageTime,
			}
			if n.qx != nil {
				// Queue mode has no lock manager: LockWait is genuinely
				// zero. Queue residence (admission -> rendezvous) and the
				// per-transaction share of batch planning are reported as
				// their own components, not hidden in Scheduling.
				bd.QueueWait = granted.Sub(dispatch)
				bd.QueuePlan = planShare
				bd.Scheduling -= planShare
				if bd.Scheduling < 0 {
					bd.Scheduling = 0
				}
			} else {
				bd.LockWait = granted.Sub(dispatch)
			}
			if rest := total - bd.Total(); rest > 0 {
				bd.Other = rest
			}
			n.cluster.collector.RecordCommit(done, bd)
			n.cluster.collector.RecordMigration(len(rt.Migrations))
			n.cluster.collector.RecordRemoteReads(role.expectRecords)
			n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseCommitted, int64(total))
			n.cluster.cfg.Telemetry.ObserveCommit(n.id, rt.Txn.ID, [telemetry.NumComponents]int64{
				telemetry.CompScheduling: int64(bd.Scheduling),
				telemetry.CompLockWait:   int64(bd.LockWait),
				telemetry.CompQueuePlan:  int64(bd.QueuePlan),
				telemetry.CompQueueWait:  int64(bd.QueueWait),
				telemetry.CompStorage:    int64(bd.Storage),
				telemetry.CompRemoteWait: int64(bd.RemoteWait),
				telemetry.CompOther:      int64(bd.Other),
				telemetry.CompTotal:      int64(total),
			})
			if hook := n.cluster.cfg.CommitHook; hook != nil {
				hook(rt)
			}
		}
		if aborted {
			n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseAborted, 0)
		}
		n.cluster.completeTxn(rt.Txn)
	}
}

// runQueuedSplit is queue mode's path for roles that expect inbound
// records, invoked inline by the bucket worker that completed the
// admission rendezvous. It performs Phase 1 immediately, then — instead of
// parking a goroutine on the mailbox the way lock mode does — registers a
// continuation that fires when the last record lands; the continuation
// re-enters the bucket pool via qexec.Submit so the storage work and
// ExecCost sleeps of Phase 3 never run on the transport receive loop. If
// the node crashes before the records arrive the continuation simply never
// fires, leaving its queue entries (and the in-flight migration gauge)
// abandoned — the same semantics as a crashed node's lock table.
func (n *Node) runQueuedSplit(rt *router.Route, role *role, arrival, admitted time.Time, planShare time.Duration) {
	gauge := len(rt.Migrations) > 0 && rt.Mode != router.Provision && n.isCommitter(rt)
	if gauge {
		n.cluster.collector.AddMigrationsInFlight(1)
	}
	dispatch := admitted
	granted := time.Now()
	n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseLocked, int64(granted.Sub(dispatch)))

	storageTime, ok := n.pushOwned(rt, role)
	if !ok {
		if gauge {
			n.cluster.collector.AddMigrationsInFlight(-1)
		}
		return // node shutting down
	}

	cont := func(remote map[tx.Key][]byte) {
		remoteReady := time.Now()
		n.cluster.tracer.Emit(n.id, rt.Txn.ID, telemetry.PhaseRemoteReady, int64(role.expectRecords))
		n.finish(rt, role, remote, arrival, dispatch, granted, remoteReady, storageTime, planShare)
		if gauge {
			n.cluster.collector.AddMigrationsInFlight(-1)
		}
	}
	if remote, ready := n.mailboxFor(rt.Txn.ID).subscribe(role.expectRecords, func(remote map[tx.Key][]byte) {
		n.qx.Submit(rt.Txn.ID, func() { cont(remote) })
	}); ready {
		cont(remote)
	}
}

func (n *Node) sleepStorage() {
	if d := n.cluster.cfg.StorageDelay; d > 0 {
		time.Sleep(d)
	}
}

// runMaster executes the transaction logic at the single-master execution
// site: assemble the value view from local storage and pushed records,
// insert inbound migrations into local storage, run the procedure with
// UNDO protection, then distribute write-backs and outbound migrations.
func (n *Node) runMaster(rt *router.Route, role *role, remote map[tx.Key][]byte) (time.Duration, bool) {
	var storageTime time.Duration
	req := rt.Txn
	access := req.AccessSet()
	writes := req.WriteSet()

	// Reads of a nil map are legal and return false, so the single-node
	// common case (no migrations, no write-backs) allocates neither.
	var inbound map[tx.Key]bool // keys migrating INTO this master
	if len(rt.Migrations) > 0 {
		inbound = make(map[tx.Key]bool, len(rt.Migrations))
		for _, m := range rt.Migrations {
			if m.To == n.id && m.From != n.id {
				inbound[m.Key] = true
			}
		}
	}
	var writeBack map[tx.Key]bool
	if len(rt.WriteBack) > 0 {
		writeBack = make(map[tx.Key]bool, len(rt.WriteBack))
		for _, k := range rt.WriteBack {
			writeBack[k] = true
		}
	}

	vals := make(map[tx.Key][]byte, len(access))
	orig := make(map[tx.Key][]byte, len(access))
	undo := storage.NewUndoLog(n.store)
	localAfter := make(map[tx.Key]bool, len(access))
	var migBytes int64

	for _, k := range access {
		owner := rt.Owners.Get(k)
		if owner == n.id {
			t0 := time.Now()
			v, _ := n.store.Read(k)
			n.sleepStorage()
			storageTime += time.Since(t0)
			vals[k] = v
			localAfter[k] = true
		} else {
			v := remote[k]
			vals[k] = v
			if inbound[k] {
				// Inbound data-fusion migration: the record becomes local
				// storage *regardless of abort* (§4.2) — the plan's
				// placement effects always happen.
				if v != nil {
					t0 := time.Now()
					n.store.Write(k, v)
					n.sleepStorage()
					storageTime += time.Since(t0)
					migBytes += int64(len(v))
				}
				localAfter[k] = true
			}
		}
		orig[k] = vals[k]
	}
	// Non-access eviction arrivals handled exactly like at any other node.
	for _, k := range role.insertArrivals {
		if v, ok := remote[k]; ok && v != nil {
			t0 := time.Now()
			n.store.Write(k, v)
			n.sleepStorage()
			storageTime += time.Since(t0)
			migBytes += int64(len(v))
		}
	}
	if len(inbound) > 0 || len(role.insertArrivals) > 0 {
		n.cluster.collector.RecordMigrationBytes(int(migBytes))
		n.cluster.tracer.Emit(n.id, req.ID, telemetry.PhaseMigratedIn, migBytes)
	}

	ctx := &execCtx{node: n, vals: vals, localAfter: localAfter, undo: undo}
	execStart := time.Now()
	req.Proc.Execute(ctx)
	if d := n.cluster.cfg.ExecCost; d > 0 {
		time.Sleep(d) // simulated CPU work while holding the executor slot
	}
	n.cluster.collector.AddBusy(int(n.id), time.Since(execStart))
	storageTime += ctx.storageTime

	if ctx.aborted {
		undo.Rollback()
		if n.cluster.accountOnce(req.ID) {
			n.cluster.collector.RecordAbort()
		}
	} else {
		undo.Discard()
	}

	// Write-backs: final values on commit, original values on abort (the
	// owner still holds the lock and must be released by this message).
	var byOwner map[tx.NodeID][]network.Record
	for _, k := range writes {
		if !writeBack[k] {
			continue
		}
		if byOwner == nil {
			byOwner = make(map[tx.NodeID][]network.Record, 1)
		}
		v := orig[k]
		if !ctx.aborted {
			if bv, ok := ctx.buffered[k]; ok {
				v = bv
			}
		}
		owner := rt.Owners.Get(k)
		byOwner[owner] = append(byOwner[owner], network.Record{Key: k, Value: v})
	}
	for owner, recs := range byOwner {
		_ = n.cluster.tr.Send(network.Message{
			From: n.id, To: owner, Type: network.MsgWriteBack,
			Txn: req.ID, Records: recs,
		})
	}

	// Outbound migrations from the master (return-home moves that must
	// carry post-execution values). The push happens even when the
	// record is absent (nil payload): the destination's arrival role is
	// blocked on this message and would otherwise hold its exclusive
	// lock forever.
	for _, m := range role.outMigrations {
		t0 := time.Now()
		v, ok := n.store.Read(m.Key)
		n.sleepStorage()
		storageTime += time.Since(t0)
		if ok {
			n.store.Delete(m.Key)
		} else {
			v = nil
		}
		_ = n.cluster.tr.Send(network.Message{
			From: n.id, To: m.To, Type: network.MsgRecordPush,
			Txn: req.ID, Records: []network.Record{{Key: m.Key, Value: v}},
		})
	}
	return storageTime, ctx.aborted
}

// runWriter executes the transaction logic at one of Calvin's
// multi-master writers: it has all read values (local + broadcast) and
// applies only the writes it owns.
func (n *Node) runWriter(rt *router.Route, remote map[tx.Key][]byte) (time.Duration, bool) {
	var storageTime time.Duration
	req := rt.Txn
	vals := make(map[tx.Key][]byte)
	localAfter := map[tx.Key]bool{}
	for _, k := range req.AccessSet() {
		if rt.Owners.Get(k) == n.id {
			t0 := time.Now()
			v, _ := n.store.Read(k)
			n.sleepStorage()
			storageTime += time.Since(t0)
			vals[k] = v
			localAfter[k] = true
		} else if v, ok := remote[k]; ok {
			vals[k] = v
		}
	}
	undo := storage.NewUndoLog(n.store)
	ctx := &execCtx{node: n, vals: vals, localAfter: localAfter, undo: undo}
	execStart := time.Now()
	req.Proc.Execute(ctx)
	if d := n.cluster.cfg.ExecCost; d > 0 {
		time.Sleep(d)
	}
	n.cluster.collector.AddBusy(int(n.id), time.Since(execStart))
	storageTime += ctx.storageTime
	if ctx.aborted {
		undo.Rollback()
		if n.isCommitter(rt) && n.cluster.accountOnce(req.ID) {
			n.cluster.collector.RecordAbort()
		}
	} else {
		undo.Discard()
	}
	return storageTime, ctx.aborted
}

// execCtx implements tx.ExecCtx for an executing role. Reads come from
// the assembled value view; writes go through the undo log when the key
// is (or becomes) local, and into the write-back buffer (allocated on
// first remote write) otherwise.
type execCtx struct {
	node        *Node
	vals        map[tx.Key][]byte
	localAfter  map[tx.Key]bool
	undo        *storage.UndoLog
	buffered    map[tx.Key][]byte
	aborted     bool
	storageTime time.Duration
}

// Read implements tx.ExecCtx.
func (c *execCtx) Read(k tx.Key) []byte { return c.vals[k] }

// Write implements tx.ExecCtx.
func (c *execCtx) Write(k tx.Key, v []byte) {
	if c.aborted {
		return
	}
	c.vals[k] = v
	if c.localAfter[k] {
		t0 := time.Now()
		c.undo.Write(k, v)
		c.node.sleepStorage()
		c.storageTime += time.Since(t0)
	} else {
		if c.buffered == nil {
			c.buffered = make(map[tx.Key][]byte, 1)
		}
		c.buffered[k] = v
	}
}

// Abort implements tx.ExecCtx.
func (c *execCtx) Abort(string) { c.aborted = true }

// Aborted implements tx.ExecCtx.
func (c *execCtx) Aborted() bool { return c.aborted }
