package engine

import (
	"testing"
	"time"

	"hermes/internal/tx"
)

// TestReadOnlyTransactionsAllPolicies exercises the read-only path (no
// writers, no migrations for most policies) across every policy.
func TestReadOnlyTransactionsAllPolicies(t *testing.T) {
	for name, pf := range policies(3) {
		t.Run(name, func(t *testing.T) {
			c := newTestCluster(t, 3, pf)
			loadCounters(c, testRows)
			// Distributed read-only transaction.
			proc := &tx.OpProc{Reads: []tx.Key{tx.MakeKey(0, 1), tx.MakeKey(0, 150)}}
			for i := 0; i < 10; i++ {
				if err := c.SubmitAndWait(tx.NodeID(i%3), proc); err != nil {
					t.Fatal(err)
				}
			}
			if !c.Drain(10 * time.Second) {
				t.Fatal("drain failed")
			}
			if got := c.Collector().Committed(); got != 10 {
				t.Fatalf("Committed = %d", got)
			}
			// Reads must not have modified anything.
			for _, k := range []tx.Key{tx.MakeKey(0, 1), tx.MakeKey(0, 150)} {
				if v, ok := c.ReadRecord(k); !ok || counterVal(v) != 0 {
					t.Fatalf("read-only txn changed %v: %v", k, v)
				}
			}
		})
	}
}

// TestCalvinMultiMasterAbort verifies the abort path when multiple
// writers execute the same transaction: both must roll back.
func TestCalvinMultiMasterAbort(t *testing.T) {
	pf := policies(2)["calvin"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	k0, k1 := tx.MakeKey(0, 1), tx.MakeKey(0, 150) // one per node
	proc := &tx.OpProc{
		Reads:   []tx.Key{k0, k1},
		Writes:  []tx.Key{k0, k1},
		Value:   []byte("poison"),
		AbortIf: func(map[tx.Key][]byte) string { return "logic abort" },
	}
	if err := c.SubmitAndWait(0, proc); err != nil {
		t.Fatal(err)
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	if c.Collector().Aborted() != 1 {
		t.Fatalf("Aborted = %d, want 1", c.Collector().Aborted())
	}
	if c.Collector().Committed() != 0 {
		t.Fatalf("Committed = %d, want 0", c.Collector().Committed())
	}
	for _, k := range []tx.Key{k0, k1} {
		v, ok := c.ReadRecord(k)
		if !ok || string(v) == "poison" {
			t.Fatalf("abort leaked write at %v", k)
		}
	}
	// The system keeps running after the abort.
	if err := c.SubmitAndWait(0, incProc(k0, k1)); err != nil {
		t.Fatal(err)
	}
	c.Drain(10 * time.Second)
	if v, _ := c.ReadRecord(k0); counterVal(v) != 1 {
		t.Fatal("post-abort increment lost")
	}
}

// TestWriteOnlyBlindInsert exercises blind writes to records that do not
// exist yet (the TPC-C insert path) under single-master policies.
func TestWriteOnlyBlindInsert(t *testing.T) {
	for _, name := range []string{"hermes", "gstore", "tpart", "leap"} {
		t.Run(name, func(t *testing.T) {
			pf := policies(2)[name]
			c := newTestCluster(t, 2, pf)
			loadCounters(c, testRows)
			fresh := tx.MakeKey(2, 12345) // table 2: never loaded
			proc := &tx.OpProc{
				Reads:  []tx.Key{tx.MakeKey(0, 1)},
				Writes: []tx.Key{fresh},
				Value:  []byte("inserted"),
			}
			if err := c.SubmitAndWait(1, proc); err != nil {
				t.Fatal(err)
			}
			if !c.Drain(10 * time.Second) {
				t.Fatal("drain failed")
			}
			v, ok := c.ReadRecord(fresh)
			if !ok || string(v) != "inserted" {
				t.Fatalf("insert lost: %q, %v", v, ok)
			}
			if c.TotalRecords() != testRows+1 {
				t.Fatalf("records = %d, want %d", c.TotalRecords(), testRows+1)
			}
		})
	}
}

// TestRepeatedProvisionCycle adds and removes the same node twice; the
// replicas must stay consistent throughout.
func TestRepeatedProvisionCycle(t *testing.T) {
	pf := policies(3)["hermes"]
	c := newTestCluster(t, 3, pf)
	loadCounters(c, testRows)
	for cycle := 0; cycle < 2; cycle++ {
		done, err := c.Provision(nil, []tx.NodeID{2})
		if err != nil {
			t.Fatal(err)
		}
		c.seq.Flush()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("remove not acknowledged")
		}
		for i := 0; i < 10; i++ {
			if err := c.SubmitAndWait(0, incProc(tx.MakeKey(0, uint64(i)))); err != nil {
				t.Fatal(err)
			}
		}
		done, err = c.Provision([]tx.NodeID{2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.seq.Flush()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("re-add not acknowledged")
		}
		for i := 0; i < 10; i++ {
			if err := c.SubmitAndWait(1, incProc(tx.MakeKey(0, uint64(140+i)))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !c.Drain(20 * time.Second) {
		t.Fatal("drain failed")
	}
	// Replica routing state must agree across all nodes.
	var want uint64
	for i, id := range c.order {
		f := c.nodes[id].policy.Placement().Fusion
		if i == 0 {
			want = f.Fingerprint()
		} else if f.Fingerprint() != want {
			t.Fatalf("node %d fusion diverged after provision cycles", id)
		}
	}
	if c.TotalRecords() != testRows {
		t.Fatalf("records = %d, want %d", c.TotalRecords(), testRows)
	}
}

// TestSubmitViaStandbyNode: clients may connect to a standby node's
// front-end; its sequencer still forwards to the leader.
func TestSubmitViaStandbyNode(t *testing.T) {
	ids := []tx.NodeID{0, 1, 2}
	pf := policies(2) // policies over 2 nodes; node 2 is standby
	c, err := New(Config{
		Nodes:  ids,
		Active: ids[:2],
		Policy: pf["hermes"],
		Seq:    c8seq(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	loadCounters(c, testRows)
	if err := c.SubmitAndWait(2, incProc(tx.MakeKey(0, 5))); err != nil {
		t.Fatal(err)
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	if v, _ := c.ReadRecord(tx.MakeKey(0, 5)); counterVal(v) != 1 {
		t.Fatal("standby-submitted txn lost")
	}
}
