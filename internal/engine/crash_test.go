package engine

import (
	"testing"
	"time"

	"hermes/internal/leaktest"
	"hermes/internal/sequencer"
	"hermes/internal/tx"
)

// newReliableCluster builds a cluster with the reliable delivery layer and
// size-only batch sealing (Interval is effectively infinite), so the batch
// boundaries — and therefore routing — depend only on the submission
// order, not on timing. That is what makes a crashed run comparable
// byte-for-byte with an uninterrupted one.
func newReliableCluster(t *testing.T, nodes int, pf PolicyFactory) *Cluster {
	t.Helper()
	ids := make([]tx.NodeID, nodes)
	for i := range ids {
		ids[i] = tx.NodeID(i)
	}
	c, err := New(Config{
		Nodes:    ids,
		Policy:   pf,
		Seq:      sequencer.Config{BatchSize: 4, Interval: time.Hour},
		Reliable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// crashWorkload drives the deterministic post-checkpoint workload: txns
// transactions submitted asynchronously through node 0's front-end (single
// front-end keeps the total order identical across runs). If crash is
// true, node 1 is killed once its scheduler passes the trigger batch and
// restarted after a short outage, while traffic keeps flowing.
func crashWorkload(t *testing.T, c *Cluster, txns int, crash bool) {
	t.Helper()
	cp, err := c.Checkpoint(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dones := make([]<-chan struct{}, 0, txns)
	for i := 0; i < txns; i++ {
		k1 := tx.MakeKey(0, uint64(i*3%testRows))
		k2 := tx.MakeKey(0, uint64(i*7%testRows))
		done, err := c.Submit(0, incProc(k1, k2))
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
		if crash && i == txns/2 {
			trigger := cp.Seq + 3
			deadline := time.Now().Add(30 * time.Second)
			for c.Node(1).Scheduled() < trigger {
				if time.Now().After(deadline) {
					t.Fatal("node 1 never reached the crash trigger")
				}
				time.Sleep(200 * time.Microsecond)
			}
			if err := c.CrashNode(1); err != nil {
				t.Fatal(err)
			}
			time.Sleep(20 * time.Millisecond)
			if err := c.RestartNode(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, done := range dones {
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("transaction %d never completed", i)
		}
	}
	if !c.Drain(30 * time.Second) {
		t.Fatal("drain failed")
	}
}

// TestCrashRestartMatchesUninterrupted is the live §4.3 claim: killing a
// node mid-run and replaying it from the last checkpoint leaves the
// cluster byte-identical to a run that never crashed.
func TestCrashRestartMatchesUninterrupted(t *testing.T) {
	const txns = 40
	for _, name := range []string{"hermes", "calvin", "tpart"} {
		t.Run(name, func(t *testing.T) {
			pf := policies(3)[name]

			ref := newReliableCluster(t, 3, pf)
			loadCounters(ref, testRows)
			crashWorkload(t, ref, txns, false)
			want := ref.NodeDigests()
			wantCommitted := ref.Collector().Committed()

			c := newReliableCluster(t, 3, pf)
			loadCounters(c, testRows)
			crashWorkload(t, c, txns, true)
			got := c.NodeDigests()
			if len(got) != len(want) {
				t.Fatalf("digest count %d != %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("node %d diverged after crash-recovery:\n got %+v\nwant %+v",
						want[i].Node, got[i], want[i])
				}
			}
			// Replay must not double-count client-visible metrics.
			if gotCommitted := c.Collector().Committed(); gotCommitted != wantCommitted {
				t.Errorf("committed %d != uninterrupted %d", gotCommitted, wantCommitted)
			}
			if c.Collector().Crashes() != 1 || c.Collector().Recoveries() != 1 {
				t.Errorf("crash/recovery counters = %d/%d, want 1/1",
					c.Collector().Crashes(), c.Collector().Recoveries())
			}
			if c.Collector().Downtime() <= 0 {
				t.Error("downtime not accrued")
			}
		})
	}
}

func TestCrashNodeValidation(t *testing.T) {
	// Without the reliable layer there is no delivery log to replay.
	plain := newTestCluster(t, 2, policies(2)["hermes"])
	if err := plain.CrashNode(0); err == nil {
		t.Fatal("crash without Reliable accepted")
	}

	c := newReliableCluster(t, 2, policies(2)["hermes"])
	loadCounters(c, testRows)
	if err := c.CrashNode(0); err == nil {
		t.Fatal("crash without a prior checkpoint accepted")
	}
	if _, err := c.Checkpoint(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(7); err == nil {
		t.Fatal("crash of unknown node accepted")
	}
	if err := c.RestartNode(1); err == nil {
		t.Fatal("restart of a running node accepted")
	}
	if err := c.CrashNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(1); err == nil {
		t.Fatal("double crash accepted")
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
}

// TestClusterCloseLeaksNothing covers the cluster Close path — including
// the reliable layer's pump/feed/retransmit goroutines and a node that was
// crashed and restarted mid-run — with the goroutine-leak check.
func TestClusterCloseLeaksNothing(t *testing.T) {
	defer leaktest.Check(t)()
	ids := []tx.NodeID{0, 1}
	c, err := New(Config{
		Nodes:    ids,
		Policy:   policies(2)["hermes"],
		Seq:      sequencer.Config{BatchSize: 4, Interval: 2 * time.Millisecond},
		Reliable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	loadCounters(c, testRows)
	for i := 0; i < 8; i++ {
		if err := c.SubmitAndWait(0, incProc(tx.MakeKey(0, uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Checkpoint(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitAndWait(0, incProc(tx.MakeKey(0, 3), tx.MakeKey(0, 150))); err != nil {
		t.Fatal(err)
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	c.Stop()
	// The leader's flush timer may outlive Stop by one Interval (2ms);
	// leaktest's drain loop absorbs that.
}
