package engine

import (
	"fmt"
	"time"

	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// CrashNode kills a node: its goroutines stop and every piece of volatile
// state — storage, lock table, mailboxes, scheduler queue, routing replica
// — is abandoned (the restart builds a fresh Node; nothing of the killed
// instance is reused). The rest of the cluster keeps sequencing and
// executing; transactions that need the dead node stall deterministically
// on its locks/record pushes until RestartNode replays it back.
//
// Requires the reliable layer (Config.Reliable) — its per-destination
// delivery log is the durable input the restart replays — and a prior
// successful Checkpoint to bound the replay.
func (c *Cluster) CrashNode(id tx.NodeID) error {
	n := c.node(id)
	if n == nil {
		return fmt.Errorf("engine: crash: unknown node %d", id)
	}
	c.mu.Lock()
	switch {
	case c.stopped:
		c.mu.Unlock()
		return fmt.Errorf("engine: crash: cluster stopped")
	case c.rel == nil:
		c.mu.Unlock()
		return fmt.Errorf("engine: crash requires Config.Reliable")
	case c.lastCP == nil:
		c.mu.Unlock()
		return fmt.Errorf("engine: crash requires a prior checkpoint")
	}
	if _, down := c.crashed[id]; down {
		c.mu.Unlock()
		return fmt.Errorf("engine: node %d already crashed", id)
	}
	c.crashed[id] = time.Now()
	c.mu.Unlock()

	// Stop feeding the node before killing it so the delivery cursor
	// freezes at a consumed-message boundary; the transport keeps acking
	// and logging on the node's behalf while it is down (the log layer is
	// the durable tier, like the paper's logging service).
	c.rel.Pause(id)
	n.stop()
	n.wait()
	c.collector.RecordCrash()
	c.tracer.Emit(id, 0, telemetry.PhaseCrash, 0)
	return nil
}

// RestartNode brings a crashed node back: a fresh Node instance restores
// the last checkpoint's storage and placement snapshot, rewinds its
// delivery log to the checkpoint's watermark, and then re-consumes the
// logged input — batches and record pushes alike — which deterministically
// re-derives everything the crash destroyed and catches up the tail before
// the node rejoins live traffic.
func (c *Cluster) RestartNode(id tx.NodeID) error {
	c.mu.Lock()
	downSince, down := c.crashed[id]
	cp := c.lastCP
	c.mu.Unlock()
	if !down {
		return fmt.Errorf("engine: restart: node %d is not crashed", id)
	}
	snap, ok := cp.Stores[id]
	if !ok {
		return fmt.Errorf("engine: restart: checkpoint does not cover node %d", id)
	}
	n := newNode(id, c, c.cfg.Policy(c.cfg.Active))
	n.store.Restore(snap)
	if cp.Routing != nil {
		n.policy.Placement().Restore(cp.Routing)
	}
	n.scheduled.Store(cp.Seq)
	c.nodesMu.Lock()
	c.nodes[id] = n
	c.nodesMu.Unlock()
	// Replay: rewind the paused delivery log to the checkpoint watermark,
	// then resume — the feeder re-delivers the suffix in original order to
	// the fresh node's recvLoop. Stale messages for transactions other
	// nodes already finished are consumed and discarded harmlessly (their
	// mailboxes are never read); batches re-execute, re-applying exactly
	// the state the checkpoint does not cover.
	c.rel.Rewind(id, cp.Delivered[id])
	n.start()
	c.rel.Resume(id)
	c.mu.Lock()
	delete(c.crashed, id)
	c.mu.Unlock()
	c.collector.RecordRecovery(time.Since(downSince))
	c.tracer.Emit(id, 0, telemetry.PhaseReplay, int64(cp.Seq))
	return nil
}
