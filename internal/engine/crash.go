package engine

import (
	"fmt"
	"time"

	"hermes/internal/sequencer"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// CrashNode kills a node: its goroutines stop and every piece of volatile
// state — storage, lock table, mailboxes, scheduler queue, routing replica
// — is abandoned (the restart builds a fresh Node; nothing of the killed
// instance is reused). The rest of the cluster keeps sequencing and
// executing; transactions that need the dead node stall deterministically
// on its locks/record pushes until RestartNode replays it back.
//
// Requires the reliable layer (Config.Reliable) — its per-destination
// delivery log is the durable input the restart replays — and a prior
// successful Checkpoint to bound the replay.
func (c *Cluster) CrashNode(id tx.NodeID) error {
	if c.seq.IsReplica(id) {
		return fmt.Errorf("engine: crash: node %d is a sequencer replica, not a worker; use CrashLeader", id)
	}
	n := c.node(id)
	if n == nil {
		return fmt.Errorf("engine: crash: unknown node %d", id)
	}
	c.mu.Lock()
	switch {
	case c.stopped:
		c.mu.Unlock()
		return fmt.Errorf("engine: crash: cluster stopped")
	case c.rel == nil:
		c.mu.Unlock()
		return fmt.Errorf("engine: crash requires Config.Reliable")
	case c.lastCP == nil:
		c.mu.Unlock()
		return fmt.Errorf("engine: crash requires a prior checkpoint")
	}
	if _, down := c.crashed[id]; down {
		c.mu.Unlock()
		return fmt.Errorf("engine: node %d already crashed", id)
	}
	c.crashed[id] = time.Now()
	c.mu.Unlock()

	// Stop feeding the node before killing it so the delivery cursor
	// freezes at a consumed-message boundary; the transport keeps acking
	// and logging on the node's behalf while it is down (the log layer is
	// the durable tier, like the paper's logging service).
	c.rel.Pause(id)
	n.stop()
	n.wait()
	c.collector.RecordCrash()
	c.tracer.Emit(id, 0, telemetry.PhaseCrash, 0)
	return nil
}

// RestartNode brings a crashed node back: a fresh Node instance restores
// the last checkpoint's storage and placement snapshot, rewinds its
// delivery log to the checkpoint's watermark, and then re-consumes the
// logged input — batches and record pushes alike — which deterministically
// re-derives everything the crash destroyed and catches up the tail before
// the node rejoins live traffic.
func (c *Cluster) RestartNode(id tx.NodeID) error {
	if c.seq.IsReplica(id) {
		return fmt.Errorf("engine: restart: node %d is a sequencer replica, not a worker; use RestartLeader", id)
	}
	c.mu.Lock()
	downSince, down := c.crashed[id]
	cp := c.lastCP
	c.mu.Unlock()
	if !down {
		return fmt.Errorf("engine: restart: node %d is not crashed", id)
	}
	snap, ok := cp.Stores[id]
	if !ok {
		return fmt.Errorf("engine: restart: checkpoint does not cover node %d", id)
	}
	n := newNode(id, c, c.cfg.Policy(c.cfg.Active))
	n.store.Restore(snap)
	if cp.Routing != nil {
		n.policy.Placement().Restore(cp.Routing)
	}
	n.scheduled.Store(cp.Seq)
	c.nodesMu.Lock()
	c.nodes[id] = n
	c.nodesMu.Unlock()
	// Replay: rewind the paused delivery log to the checkpoint watermark,
	// then resume — the feeder re-delivers the suffix in original order to
	// the fresh node's recvLoop. Stale messages for transactions other
	// nodes already finished are consumed and discarded harmlessly (their
	// mailboxes are never read); batches re-execute, re-applying exactly
	// the state the checkpoint does not cover.
	if err := c.rel.Rewind(id, cp.Delivered[id]); err != nil {
		return fmt.Errorf("engine: restart node %d: %w", id, err)
	}
	n.start()
	c.rel.Resume(id)
	c.mu.Lock()
	delete(c.crashed, id)
	c.mu.Unlock()
	c.collector.RecordRecovery(time.Since(downSince))
	c.tracer.Emit(id, 0, telemetry.PhaseReplay, int64(cp.Seq))
	return nil
}

// CrashLeader kills the current sequencer leader replica. Before the
// kill, sealing is fenced and every already-sealed batch finishes its
// replication round and delivery — mirroring the protocol invariant that
// a batch is either fully replicated or retried by its front-end, never
// half-owned by a dead leader. After the kill the standbys detect the
// silence via heartbeat timeout and the first live standby promotes
// itself; unacknowledged client submissions are redirected by the
// session front-ends and deduplicated by the new leader.
//
// Requires standby replicas (Config.Seq.Standbys > 0), the reliable
// layer, and a prior Checkpoint (which bounds the restart's replay).
func (c *Cluster) CrashLeader() error {
	c.mu.Lock()
	switch {
	case c.stopped:
		c.mu.Unlock()
		return fmt.Errorf("engine: crash: cluster stopped")
	case c.rel == nil:
		c.mu.Unlock()
		return fmt.Errorf("engine: crash requires Config.Reliable")
	case c.lastCP == nil:
		c.mu.Unlock()
		return fmt.Errorf("engine: crash requires a prior checkpoint")
	case c.seqCrashed != tx.NoNode:
		id := c.seqCrashed
		c.mu.Unlock()
		return fmt.Errorf("engine: sequencer replica %d already crashed", id)
	}
	c.mu.Unlock()

	id, err := c.seq.PrepareCrash(10 * time.Second)
	if err != nil {
		return fmt.Errorf("engine: crash leader: %w", err)
	}
	// As with worker crashes, the delivery feed freezes first so the
	// replica's cursor stops at a consumed-message boundary; the reliable
	// layer keeps logging forwards, replicates and epoch announcements on
	// the dead replica's behalf — that log is what the restart replays.
	c.rel.Pause(id)
	c.seq.Kill(id)
	c.mu.Lock()
	c.seqCrashed = id
	c.crashed[id] = time.Now()
	c.mu.Unlock()
	c.collector.RecordCrash()
	c.tracer.Emit(id, 0, telemetry.PhaseCrash, 0)
	return nil
}

// RestartLeader brings the killed sequencer replica back. The fresh
// replica restores the checkpoint's sequencer state (epoch, leader,
// (seq, nextTxn) position, per-client dedup watermarks), rewinds its
// delivery log to the checkpoint watermark, and replays the logged
// input — replicated batches, epoch announcements, heartbeats — which
// rebuilds its retained log and tells it who leads the current epoch. It
// rejoins as a standby of the promoted leader (leadership does not fail
// back) and is from then on eligible for future promotions.
func (c *Cluster) RestartLeader() error {
	c.mu.Lock()
	id := c.seqCrashed
	cp := c.lastCP
	downSince := c.crashed[id]
	c.mu.Unlock()
	if id == tx.NoNode {
		return fmt.Errorf("engine: restart: no sequencer replica is crashed")
	}
	// Wait for the promotion to complete first: the restarted replica
	// resumes from the checkpoint's counters, and only the replicated
	// stream a new leader re-delivers can catch it up past what the dead
	// leader itself sealed after the checkpoint.
	deadline := time.Now().Add(10 * time.Second)
	for c.seq.LeaderID() == id {
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: restart leader: no standby promoted to replace replica %d", id)
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.seq.Restart(id, sequencer.RestoreState{
		Epoch:   cp.SeqEpoch,
		Leader:  cp.SeqLeader,
		NextSeq: cp.Seq,
		NextTxn: cp.NextTxn,
		Clients: cp.SeqClients,
	}); err != nil {
		return fmt.Errorf("engine: restart leader: %w", err)
	}
	if err := c.rel.Rewind(id, cp.Delivered[id]); err != nil {
		return fmt.Errorf("engine: restart leader: %w", err)
	}
	c.rel.Resume(id)
	// The replica is live again once it has consumed its logged history;
	// new messages keep flowing in behind the backlog, so a zero reading
	// means "caught up with everything logged before this instant".
	for c.rel.Backlog(id) > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: restart leader: replica %d replay did not drain (backlog %d)", id, c.rel.Backlog(id))
		}
		time.Sleep(time.Millisecond)
	}
	c.seq.FinishRecovery(id)
	c.mu.Lock()
	c.seqCrashed = tx.NoNode
	delete(c.crashed, id)
	c.mu.Unlock()
	c.collector.RecordRecovery(time.Since(downSince))
	c.tracer.Emit(id, 0, telemetry.PhaseReplay, int64(cp.Seq))
	return nil
}
