package engine

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/core"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/sequencer"
	"hermes/internal/tx"
	"hermes/internal/workload"
)

// tpccPolicy builds a policy factory over the TPC-C by-warehouse layout.
func tpccPolicy(name string, base partition.Partitioner) PolicyFactory {
	switch name {
	case "calvin":
		return func(a []tx.NodeID) router.Policy { return router.NewCalvin(base, a) }
	case "gstore":
		return func(a []tx.NodeID) router.Policy { return router.NewGStore(base, a) }
	case "leap":
		return func(a []tx.NodeID) router.Policy { return router.NewLEAP(base, a) }
	case "tpart":
		return func(a []tx.NodeID) router.Policy { return router.NewTPart(base, a, 0.5) }
	default:
		return func(a []tx.NodeID) router.Policy { return core.New(base, a, core.DefaultConfig(2048)) }
	}
}

func c8seq() sequencer.Config {
	return sequencer.Config{BatchSize: 8, Interval: 2 * time.Millisecond}
}

// TestRandomizedSerializability is a quick-check-style integration fuzz:
// random multi-key increment transactions (random sizes, skewed keys,
// occasional logic aborts) run concurrently under every policy; the final
// counter sum must equal the number of successful increments, the record
// count must be conserved, and committed+aborted must cover every
// submission.
func TestRandomizedSerializability(t *testing.T) {
	for name, pf := range policies(3) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			c := newTestCluster(t, 3, pf)
			loadCounters(c, testRows)

			const txns = 150
			expectAborts := 0
			expectIncrements := 0
			for i := 0; i < txns; i++ {
				nKeys := 1 + rng.Intn(5)
				keySet := map[tx.Key]bool{}
				for k := 0; k < nKeys; k++ {
					// Skew toward a hot band to force conflicts.
					var row int
					if rng.Intn(2) == 0 {
						row = rng.Intn(8)
					} else {
						row = rng.Intn(testRows)
					}
					keySet[tx.MakeKey(0, uint64(row))] = true
				}
				var keys []tx.Key
				for k := range keySet {
					keys = append(keys, k)
				}
				keys = tx.NormalizeKeys(keys)
				abort := rng.Intn(10) == 0
				if abort {
					expectAborts++
				} else {
					expectIncrements += len(keys)
				}
				proc := &tx.OpProc{
					Reads:  keys,
					Writes: keys,
					Mutate: func(_ tx.Key, cur []byte) []byte {
						out := make([]byte, 8)
						if len(cur) >= 8 {
							copy(out, cur)
						}
						out2 := counterVal(out) + 1
						for b := 0; b < 8; b++ {
							out[b] = byte(out2 >> (8 * b))
						}
						return out
					},
				}
				if abort {
					proc.AbortIf = func(map[tx.Key][]byte) string { return "fuzz abort" }
				}
				if _, err := c.Submit(tx.NodeID(rng.Intn(3)), proc); err != nil {
					t.Fatal(err)
				}
			}
			if !c.Drain(30 * time.Second) {
				t.Fatalf("did not drain (pending=%d)", c.Pending())
			}
			col := c.Collector()
			if got := col.Committed() + col.Aborted(); got != txns {
				t.Fatalf("committed+aborted = %d, want %d", got, txns)
			}
			if col.Aborted() != int64(expectAborts) {
				t.Fatalf("aborted = %d, want %d", col.Aborted(), expectAborts)
			}
			var sum uint64
			for i := 0; i < testRows; i++ {
				if v, ok := c.ReadRecord(tx.MakeKey(0, uint64(i))); ok {
					sum += counterVal(v)
				}
			}
			if sum != uint64(expectIncrements) {
				t.Fatalf("counter sum = %d, want %d", sum, expectIncrements)
			}
			if c.TotalRecords() != testRows {
				t.Fatalf("records = %d, want %d", c.TotalRecords(), testRows)
			}
		})
	}
}

// fuzzPolicies is the deterministic order FuzzDeterministicReplay uses to
// map its policy selector to a factory (maps would randomize it).
var fuzzPolicies = []string{"hermes", "calvin", "gstore", "leap", "tpart"}

// FuzzDeterministicReplay feeds randomized workloads (seeded key sets and
// transaction shapes) through two independent clusters with pinned batch
// composition and requires byte-identical state fingerprints. Any
// interleaving-dependent behaviour the engine picks up — map iteration in
// a hot path, a racy counter folded into state, timing-dependent batch
// boundaries — shows up as a fingerprint mismatch on some input.
//
// Batch composition is pinned the same way internal/chaos does it (which
// this package cannot import without a cycle): every transaction enters
// through node 0's front-end so one FIFO link fixes arrival order, and the
// sequencer's interval flush is disabled so batches seal only on the size
// trigger.
//
// A non-zero faultSel turns the second run into a leader-failover replay:
// the cluster gets sequencer standbys and the reliable layer, and the
// total-order leader is killed and restarted mid-stream. The failover run
// must still fingerprint identically to the undisturbed one — the fuzzer
// hunts for workload shapes where promotion, redirect, or dedup lose or
// duplicate a transaction.
func FuzzDeterministicReplay(f *testing.F) {
	f.Add(int64(1), int64(0), int64(0))
	f.Add(int64(2), int64(1), int64(0))
	f.Add(int64(42), int64(4), int64(0))
	// Negative seeds confine every key to node 0's half of the key space,
	// so step 1 routes the whole batch to one node and step 3 must relax
	// δ to rebalance — the path the early-exit optimization rewrote.
	f.Add(int64(-42), int64(0), int64(0))
	// Leader-failover seed: the same replay property with a mid-stream
	// leader kill in the second run.
	f.Add(int64(23), int64(0), int64(1))
	f.Fuzz(func(t *testing.T, seed, polSel, faultSel int64) {
		pol := fuzzPolicies[int(uint64(polSel)%uint64(len(fuzzPolicies)))]
		failover := faultSel != 0
		const (
			nodes = 2
			rows  = 24
			txns  = 16
			batch = 4
		)
		// Generate the trace once so both runs replay the identical input.
		rng := rand.New(rand.NewSource(seed))
		type shape struct {
			keys  []tx.Key
			abort bool
		}
		keySpan := rows
		if seed < 0 {
			keySpan = rows / 2 // skew: all keys homed on node 0 (rebalance stress)
		}
		shapes := make([]shape, txns)
		for i := range shapes {
			nKeys := 1 + rng.Intn(3)
			set := map[tx.Key]bool{}
			for k := 0; k < nKeys; k++ {
				set[tx.MakeKey(0, uint64(rng.Intn(keySpan)))] = true
			}
			var keys []tx.Key
			for k := range set {
				keys = append(keys, k)
			}
			shapes[i] = shape{keys: tx.NormalizeKeys(keys), abort: rng.Intn(8) == 0}
		}

		run := func(kill bool) uint64 {
			base := partition.NewUniformRange(0, rows, nodes)
			cfg := Config{
				Nodes:  []tx.NodeID{0, 1},
				Policy: tpccPolicy(pol, base),
				Seq:    sequencer.Config{BatchSize: batch, Interval: time.Hour},
			}
			if failover {
				// Both runs get the fault-tolerant group so the only
				// difference between them is the kill itself.
				cfg.Seq.Standbys = 2
				cfg.Seq.Heartbeat = 5 * time.Millisecond
				cfg.Seq.FailoverTimeout = 60 * time.Millisecond
				cfg.Seq.RetryTimeout = 10 * time.Millisecond
				cfg.Seq.RetryCap = 100 * time.Millisecond
				cfg.Reliable = true
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			loadCounters(c, rows)
			var cpSeq uint64
			if kill {
				cp, err := c.Checkpoint(10 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				cpSeq = cp.Seq
			}
			dones := make([]<-chan struct{}, 0, txns)
			for i, s := range shapes {
				proc := incProc(s.keys...)
				if s.abort {
					proc = &tx.OpProc{
						Reads: s.keys, Writes: s.keys,
						AbortIf: func(map[tx.Key][]byte) string { return "fuzz abort" },
					}
				}
				done, err := c.Submit(0, proc)
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				dones = append(dones, done)
			}
			deadline := time.After(30 * time.Second)
			if kill {
				for c.Node(0).Scheduled() < cpSeq+1 {
					select {
					case <-deadline:
						t.Fatal("node 0 never reached the kill trigger")
					default:
						time.Sleep(200 * time.Microsecond)
					}
				}
				if err := c.CrashLeader(); err != nil {
					t.Fatal(err)
				}
				time.Sleep(5 * time.Millisecond)
				if err := c.RestartLeader(); err != nil {
					t.Fatal(err)
				}
			}
			for i, done := range dones {
				select {
				case <-done:
				case <-deadline:
					t.Fatalf("txn %d/%d did not complete", i, txns)
				}
			}
			if !c.Drain(10 * time.Second) {
				t.Fatalf("did not drain (pending=%d)", c.Pending())
			}
			return c.Fingerprint()
		}
		if a, b := run(false), run(failover); a != b {
			t.Fatalf("seed=%d policy=%s failover=%v: replay fingerprints differ: %x vs %x",
				seed, pol, failover, a, b)
		}
	})
}

// TestTPCCIntegrity runs the TPC-C generator through the full engine
// under every policy and checks the workload's invariants: submissions
// are fully accounted (committed + aborted), inserts only grow the record
// count, and the database never loses the records it was loaded with.
func TestTPCCIntegrity(t *testing.T) {
	cfg := workload.DefaultTPCCConfig(2, 2)
	cfg.StockPerWarehouse = 50
	cfg.Seed = 3
	for name := range policies(2) {
		t.Run(name, func(t *testing.T) {
			gen := workload.NewTPCC(cfg)
			// The TPC-C partitioner (by warehouse) replaces the uniform
			// range the shared policies() helper uses; rebuild the
			// factory over it.
			base := gen.Partitioner()
			c, err := New(Config{
				Nodes:  []tx.NodeID{0, 1},
				Policy: tpccPolicy(name, base),
				Seq:    c8seq(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			loaded := 0
			gen.ForEachRecord(func(k tx.Key, v []byte) {
				c.LoadRecord(k, v)
				loaded++
			})
			const txns = 80
			for i := 0; i < txns; i++ {
				proc, via := gen.Next(0)
				if _, err := c.Submit(via, proc); err != nil {
					t.Fatal(err)
				}
			}
			if !c.Drain(30 * time.Second) {
				t.Fatalf("did not drain (pending=%d)", c.Pending())
			}
			col := c.Collector()
			if got := col.Committed() + col.Aborted(); got != txns {
				t.Fatalf("committed+aborted = %d, want %d", got, txns)
			}
			if c.TotalRecords() < loaded {
				t.Fatalf("records shrank: %d < %d loaded", c.TotalRecords(), loaded)
			}
		})
	}
}
