package tx

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"time"
)

// WireSafe marks procedures whose full behavior survives serialization:
// every field that influences Execute is exported data, with no closures.
// gob silently ignores func-typed struct fields, so a closure-bearing
// procedure (OpProc with Mutate, FuncProc) would decode on a remote node
// as a different transaction and the replicas would diverge. Distributed
// deployments refuse to submit procedures that do not implement WireSafe.
type WireSafe interface {
	WireSafe()
}

// CounterProc is the wire-safe read-modify-write transaction used by
// distributed workloads: read all declared keys, then overwrite each
// written key with a payload whose leading 8-byte little-endian counter is
// the previous value's counter plus one (the same invariant as
// workload.IncrementProc, expressed without a closure).
type CounterProc struct {
	Reads  []Key
	Writes []Key
	// Payload is the size of the written value; values shorter than the
	// 8-byte counter are padded up to it.
	Payload int
}

// ReadSet implements Procedure.
func (p *CounterProc) ReadSet() []Key { return p.Reads }

// WriteSet implements Procedure.
func (p *CounterProc) WriteSet() []Key { return p.Writes }

// Execute implements Procedure.
func (p *CounterProc) Execute(ctx ExecCtx) {
	size := p.Payload
	if size < 8 {
		size = 8
	}
	// Single-key fast path: the hot-chain case needs no read map.
	if len(p.Writes) == 1 && (len(p.Reads) == 0 || (len(p.Reads) == 1 && p.Reads[0] == p.Writes[0])) {
		k := p.Writes[0]
		cur := ctx.Read(k)
		var c uint64
		if len(cur) >= 8 {
			c = binary.LittleEndian.Uint64(cur)
		}
		v := make([]byte, size)
		binary.LittleEndian.PutUint64(v, c+1)
		ctx.Write(k, v)
		return
	}
	read := make(map[Key][]byte, len(p.Reads))
	for _, k := range p.Reads {
		read[k] = ctx.Read(k)
	}
	for _, k := range p.Writes {
		cur, ok := read[k]
		if !ok {
			cur = ctx.Read(k)
		}
		var c uint64
		if len(cur) >= 8 {
			c = binary.LittleEndian.Uint64(cur)
		}
		v := make([]byte, size)
		binary.LittleEndian.PutUint64(v, c+1)
		ctx.Write(k, v)
	}
}

// WireSafe implements WireSafe.
func (p *CounterProc) WireSafe() {}

// WireSafe implements WireSafe: a migration is pure data.
func (p *MigrationProc) WireSafe() {}

// WireSafe implements WireSafe: a provisioning transaction is pure data.
func (p *ProvisionProc) WireSafe() {}

// requestWire is the on-the-wire shape of a Request: only the fields that
// are meaningful across a process boundary. The key-set caches are
// rebuilt on decode and the in-process origin pointer is dropped.
type requestWire struct {
	ID         TxnID
	Proc       Procedure
	SubmitTime time.Time
	Client     NodeID
	ClientSeq  uint64
}

// GobEncode implements gob.GobEncoder. Without it gob would refuse the
// struct outright (unexported fields only confuse it when a struct has
// both), and more importantly the decoded Request would carry nil key-set
// caches; encoding explicitly keeps the wire format a deliberate contract.
func (r *Request) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(requestWire{
		ID:         r.ID,
		Proc:       r.Proc,
		SubmitTime: r.SubmitTime,
		Client:     r.Client,
		ClientSeq:  r.ClientSeq,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder, rebuilding the normalized read- and
// write-set caches exactly as NewRequest does so routing on the receiving
// node sees the same sets as routing on the sender.
func (r *Request) GobDecode(b []byte) error {
	var w requestWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	*r = Request{
		ID:         w.ID,
		Proc:       w.Proc,
		SubmitTime: w.SubmitTime,
		Client:     w.Client,
		ClientSeq:  w.ClientSeq,
	}
	if w.Proc != nil {
		r.reads = NormalizeKeys(append([]Key(nil), w.Proc.ReadSet()...))
		r.writes = NormalizeKeys(append([]Key(nil), w.Proc.WriteSet()...))
	}
	return nil
}

func init() {
	// Register the wire-safe procedure implementations so they can travel
	// inside Request.Proc. Closure-bearing procedures (OpProc, FuncProc)
	// are deliberately not registered: encoding them fails loudly instead
	// of silently dropping their behavior.
	gob.Register(&CounterProc{})
	gob.Register(&MigrationProc{})
	gob.Register(&ProvisionProc{})
}
