package tx

// ProvisionProc is the special totally ordered transaction Hermes issues
// when machine provisioning changes (§3.3): because it flows through the
// same sequencer as user transactions, every scheduler includes the added
// node or excludes the removed node at exactly the same point in the
// serial order, keeping the replicated routing state consistent.
//
// It carries no data accesses; schedulers intercept it before routing.
type ProvisionProc struct {
	Add    []NodeID
	Remove []NodeID
}

// ReadSet implements Procedure.
func (p *ProvisionProc) ReadSet() []Key { return nil }

// WriteSet implements Procedure.
func (p *ProvisionProc) WriteSet() []Key { return nil }

// Execute implements Procedure. Provisioning transactions have no record
// effects; all their work happens in the scheduler.
func (p *ProvisionProc) Execute(ExecCtx) {}
