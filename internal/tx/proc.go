package tx

// OpProc is a ready-made Procedure for the common OLTP pattern of reading a
// set of records, optionally transforming some of them, and writing them
// back. It covers the YCSB-style transactions used throughout the paper's
// evaluation (read-only, and read-modify-write).
type OpProc struct {
	Reads  []Key
	Writes []Key
	// Mutate, if non-nil, derives the new value for a written key from its
	// current value. If nil, written keys are overwritten with Value.
	Mutate func(k Key, cur []byte) []byte
	// Value is the constant payload written when Mutate is nil. A nil
	// Value with nil Mutate writes back the value read (a pure touch).
	Value []byte
	// AbortIf, if non-nil, is evaluated after all reads; returning a
	// non-empty string triggers a deterministic logic abort.
	AbortIf func(read map[Key][]byte) string
}

// ReadSet implements Procedure.
func (p *OpProc) ReadSet() []Key { return p.Reads }

// WriteSet implements Procedure.
func (p *OpProc) WriteSet() []Key { return p.Writes }

// Execute implements Procedure.
func (p *OpProc) Execute(ctx ExecCtx) {
	read := make(map[Key][]byte, len(p.Reads))
	for _, k := range p.Reads {
		read[k] = ctx.Read(k)
	}
	if p.AbortIf != nil {
		if reason := p.AbortIf(read); reason != "" {
			ctx.Abort(reason)
			return
		}
	}
	for _, k := range p.Writes {
		switch {
		case p.Mutate != nil:
			cur, ok := read[k]
			if !ok {
				cur = ctx.Read(k)
			}
			ctx.Write(k, p.Mutate(k, cur))
		case p.Value != nil:
			ctx.Write(k, p.Value)
		default:
			cur, ok := read[k]
			if !ok {
				cur = ctx.Read(k)
			}
			ctx.Write(k, cur)
		}
	}
}

// FuncProc adapts an arbitrary function to the Procedure interface. Used by
// tests and by workloads with bespoke logic (e.g. TPC-C New-Order).
type FuncProc struct {
	Reads  []Key
	Writes []Key
	Fn     func(ctx ExecCtx)
}

// ReadSet implements Procedure.
func (p *FuncProc) ReadSet() []Key { return p.Reads }

// WriteSet implements Procedure.
func (p *FuncProc) WriteSet() []Key { return p.Writes }

// Execute implements Procedure.
func (p *FuncProc) Execute(ctx ExecCtx) { p.Fn(ctx) }
