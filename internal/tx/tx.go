// Package tx defines the core transaction model shared by every layer of
// the system: table-tagged record keys, stored-procedure transactions with
// declared read- and write-sets, and totally ordered batches.
//
// Like Calvin and Hermes, the engine assumes the read-set and write-set of
// a transaction are known before it starts (the OLLP reconnaissance step of
// Calvin is assumed to have already run); every workload in this repository
// declares its sets directly.
package tx

import (
	"fmt"
	"slices"
	"sort"
	"time"
)

// Key identifies a record. The high byte carries a table tag so that
// multi-table schemas (e.g. TPC-C's nine tables) share one flat key space,
// which keeps lock tables, fusion tables and ownership maps uniform.
type Key uint64

const tableShift = 56

// MakeKey builds a key for row id within table.
// The id must fit in 56 bits; higher bits are silently truncated.
func MakeKey(table uint8, id uint64) Key {
	return Key(uint64(table)<<tableShift | (id & (1<<tableShift - 1)))
}

// Table reports the table tag of the key.
func (k Key) Table() uint8 { return uint8(k >> tableShift) }

// Row reports the row id of the key within its table.
func (k Key) Row() uint64 { return uint64(k) & (1<<tableShift - 1) }

// String formats the key as "t<table>/<row>".
func (k Key) String() string { return fmt.Sprintf("t%d/%d", k.Table(), k.Row()) }

// NodeID identifies a machine node (and, because this reproduction follows
// the paper's one-partition-per-node assumption, also a data partition).
// Node IDs are dense and start at 0.
type NodeID int

// NoNode is the sentinel for "no node" (e.g. an unroutable transaction).
const NoNode NodeID = -1

// TxnID is the globally unique, totally ordered transaction identifier
// assigned by the sequencer. Lower ID means earlier in the serial order.
type TxnID uint64

// ExecCtx is the interface a stored procedure uses to access the database
// during execution. All keys touched must have been declared in the
// procedure's read/write-sets; the engine enforces this in debug builds.
type ExecCtx interface {
	// Read returns the current value of key k. The record is guaranteed to
	// be present locally by the time the procedure runs (the engine has
	// already collected remote reads).
	Read(k Key) []byte
	// Write replaces the value of key k.
	Write(k Key, v []byte)
	// Abort signals a logic abort (e.g. insufficient stock). The engine
	// rolls back writes via the undo log but still performs the data
	// migrations planned by the router, per §4.2 of the paper.
	Abort(reason string)
	// Aborted reports whether Abort has been called.
	Aborted() bool
}

// Procedure is a deterministic stored procedure. Implementations must be
// pure functions of the values read through the ExecCtx; in particular they
// must not consult wall-clock time or randomness, otherwise replicas
// diverge.
type Procedure interface {
	// ReadSet returns the keys the procedure may read. It may overlap
	// WriteSet; the engine takes the union for record collection.
	ReadSet() []Key
	// WriteSet returns the keys the procedure writes.
	WriteSet() []Key
	// Execute runs the transaction logic.
	Execute(ctx ExecCtx)
}

// Request is a client transaction request flowing through the system.
type Request struct {
	ID   TxnID
	Proc Procedure

	// SubmitTime is when the client issued the request; used only for
	// latency accounting, never for execution decisions.
	SubmitTime time.Time

	// Client and ClientSeq identify the submitting front-end and its
	// per-client submission number (first = 1; 0 = no client session).
	// The sequencer leader uses the pair to deduplicate retried
	// submissions across a failover so a request is never sequenced
	// twice. They are set by the front-end, not by callers.
	Client    NodeID
	ClientSeq uint64

	// reads/writes cache the (deduplicated, sorted) declared sets so the
	// router does not re-derive them for every candidate route.
	reads  []Key
	writes []Key

	// origin, when non-nil, points at the caller's queued request this
	// transmission copy was made from. Session front-ends send a private
	// copy on every (re)transmission so no two sequencer replicas ever
	// write the same Request — concurrent leaders of different epochs
	// each seal their own copy — while the engine can still correlate
	// whichever copy the total order delivers back to the submitted
	// original. In-process only: unexported, so a copy crossing a real
	// network drops it like the cached key sets.
	origin *Request
}

// SendCopy returns a private copy of r for one transmission to the
// sequencer, remembering r as its origin. The sealing leader writes the
// assigned transaction ID into the copy, never into r.
func (r *Request) SendCopy() *Request {
	cp := *r
	cp.origin = r
	return &cp
}

// Origin returns the submitted request a delivered request correlates
// back to: the queued original for a SendCopy transmission, r itself
// otherwise.
func (r *Request) Origin() *Request {
	if r.origin != nil {
		return r.origin
	}
	return r
}

// NewRequest builds a request around proc, caching its normalized read- and
// write-sets. The declared slices are copied before normalization so a
// procedure value can be submitted repeatedly (and concurrently) without
// the in-place sort racing with executors of earlier submissions.
func NewRequest(id TxnID, proc Procedure) *Request {
	return &Request{
		ID:     id,
		Proc:   proc,
		reads:  NormalizeKeys(append([]Key(nil), proc.ReadSet()...)),
		writes: NormalizeKeys(append([]Key(nil), proc.WriteSet()...)),
	}
}

// ReadSet returns the deduplicated, sorted read-set. Callers must not
// mutate the returned slice.
func (r *Request) ReadSet() []Key { return r.reads }

// WriteSet returns the deduplicated, sorted write-set. Callers must not
// mutate the returned slice.
func (r *Request) WriteSet() []Key { return r.writes }

// AccessSet returns the union of the read- and write-sets, sorted.
func (r *Request) AccessSet() []Key {
	out := make([]Key, 0, len(r.reads)+len(r.writes))
	out = append(out, r.reads...)
	out = append(out, r.writes...)
	return NormalizeKeys(out)
}

// Batch is one totally ordered group of requests. All nodes receive the
// identical sequence of batches; Seq increases by one per batch.
type Batch struct {
	Seq  uint64
	Txns []*Request
}

// NormalizeKeys sorts keys ascending and removes duplicates in place,
// returning the compacted slice.
func NormalizeKeys(ks []Key) []Key {
	if len(ks) <= 1 {
		return ks
	}
	slices.Sort(ks)
	w := 1
	for i := 1; i < len(ks); i++ {
		if ks[i] != ks[w-1] {
			ks[w] = ks[i]
			w++
		}
	}
	return ks[:w]
}

// ContainsKey reports whether sorted keys contains k.
func ContainsKey(keys []Key, k Key) bool {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	return i < len(keys) && keys[i] == k
}
