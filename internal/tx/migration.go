package tx

// MigrationProc is the dedicated migration transaction used for moving
// cold data in chunks (Squall-style asynchronous migration, §3.3/§5.4).
// The chunk keys form the write-set so the ordinary conservative-ordered
// locking path serializes the move against user transactions; the actual
// record movement is carried out by the engine from the routing plan, so
// Execute is a no-op.
type MigrationProc struct {
	// Keys is the chunk being moved.
	Keys []Key
	// To is the destination partition. The source of each key is whatever
	// its current owner is at the transaction's position in the total
	// order.
	To NodeID
}

// ReadSet implements Procedure.
func (p *MigrationProc) ReadSet() []Key { return nil }

// WriteSet implements Procedure.
func (p *MigrationProc) WriteSet() []Key { return p.Keys }

// Execute implements Procedure.
func (p *MigrationProc) Execute(ExecCtx) {}
