package tx

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMakeKeyRoundTrip(t *testing.T) {
	cases := []struct {
		table uint8
		row   uint64
	}{
		{0, 0},
		{1, 1},
		{9, 123456789},
		{255, 1<<56 - 1},
	}
	for _, c := range cases {
		k := MakeKey(c.table, c.row)
		if k.Table() != c.table || k.Row() != c.row {
			t.Errorf("MakeKey(%d,%d) round-trip = (%d,%d)", c.table, c.row, k.Table(), k.Row())
		}
	}
}

func TestMakeKeyRoundTripProperty(t *testing.T) {
	f := func(table uint8, row uint64) bool {
		row &= 1<<56 - 1
		k := MakeKey(table, row)
		return k.Table() == table && k.Row() == row
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderingPreservesRowOrderWithinTable(t *testing.T) {
	f := func(table uint8, a, b uint64) bool {
		a &= 1<<56 - 1
		b &= 1<<56 - 1
		if a == b {
			return MakeKey(table, a) == MakeKey(table, b)
		}
		return (a < b) == (MakeKey(table, a) < MakeKey(table, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeKeys(t *testing.T) {
	tests := []struct {
		name string
		in   []Key
		want []Key
	}{
		{"empty", nil, nil},
		{"single", []Key{5}, []Key{5}},
		{"sorted", []Key{1, 2, 3}, []Key{1, 2, 3}},
		{"reverse", []Key{3, 2, 1}, []Key{1, 2, 3}},
		{"dups", []Key{2, 1, 2, 1, 2}, []Key{1, 2}},
		{"all same", []Key{7, 7, 7}, []Key{7}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := NormalizeKeys(append([]Key(nil), tc.in...))
			if len(got) != len(tc.want) {
				t.Fatalf("NormalizeKeys(%v) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("NormalizeKeys(%v) = %v, want %v", tc.in, got, tc.want)
				}
			}
		})
	}
}

func TestNormalizeKeysProperty(t *testing.T) {
	f := func(in []uint64) bool {
		ks := make([]Key, len(in))
		for i, v := range in {
			ks[i] = Key(v % 100) // force duplicates
		}
		out := NormalizeKeys(ks)
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] {
				return false
			}
		}
		// Every input key must be present.
		for _, v := range in {
			if !ContainsKey(out, Key(v%100)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsKey(t *testing.T) {
	keys := []Key{1, 3, 5, 9}
	for _, k := range keys {
		if !ContainsKey(keys, k) {
			t.Errorf("ContainsKey(%v, %d) = false", keys, k)
		}
	}
	for _, k := range []Key{0, 2, 4, 10} {
		if ContainsKey(keys, k) {
			t.Errorf("ContainsKey(%v, %d) = true", keys, k)
		}
	}
}

func TestRequestNormalizesSets(t *testing.T) {
	p := &OpProc{Reads: []Key{3, 1, 3}, Writes: []Key{2, 2}}
	r := NewRequest(7, p)
	if got := r.ReadSet(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ReadSet = %v, want [1 3]", got)
	}
	if got := r.WriteSet(); len(got) != 1 || got[0] != 2 {
		t.Errorf("WriteSet = %v, want [2]", got)
	}
	if got := r.AccessSet(); len(got) != 3 {
		t.Errorf("AccessSet = %v, want [1 2 3]", got)
	}
}

type fakeCtx struct {
	vals    map[Key][]byte
	writes  map[Key][]byte
	aborted string
}

func newFakeCtx(vals map[Key][]byte) *fakeCtx {
	return &fakeCtx{vals: vals, writes: map[Key][]byte{}}
}

func (c *fakeCtx) Read(k Key) []byte     { return c.vals[k] }
func (c *fakeCtx) Write(k Key, v []byte) { c.writes[k] = v }
func (c *fakeCtx) Abort(reason string)   { c.aborted = reason }
func (c *fakeCtx) Aborted() bool         { return c.aborted != "" }

func TestOpProcReadModifyWrite(t *testing.T) {
	ctx := newFakeCtx(map[Key][]byte{1: {10}, 2: {20}})
	p := &OpProc{
		Reads:  []Key{1, 2},
		Writes: []Key{2},
		Mutate: func(_ Key, cur []byte) []byte { return []byte{cur[0] + 1} },
	}
	p.Execute(ctx)
	if got := ctx.writes[2]; len(got) != 1 || got[0] != 21 {
		t.Errorf("write to key 2 = %v, want [21]", got)
	}
	if ctx.Aborted() {
		t.Error("unexpected abort")
	}
}

func TestOpProcAbortSkipsWrites(t *testing.T) {
	ctx := newFakeCtx(map[Key][]byte{1: {0}})
	p := &OpProc{
		Reads:   []Key{1},
		Writes:  []Key{1},
		Value:   []byte{99},
		AbortIf: func(read map[Key][]byte) string { return "insufficient stock" },
	}
	p.Execute(ctx)
	if !ctx.Aborted() {
		t.Fatal("expected abort")
	}
	if len(ctx.writes) != 0 {
		t.Errorf("writes after abort = %v, want none", ctx.writes)
	}
}

func TestOpProcConstantValueWrite(t *testing.T) {
	ctx := newFakeCtx(map[Key][]byte{})
	p := &OpProc{Writes: []Key{4}, Value: []byte("v")}
	p.Execute(ctx)
	if string(ctx.writes[4]) != "v" {
		t.Errorf("write = %q, want %q", ctx.writes[4], "v")
	}
}

func TestOpProcWriteBackReadValue(t *testing.T) {
	ctx := newFakeCtx(map[Key][]byte{4: []byte("orig")})
	p := &OpProc{Reads: []Key{4}, Writes: []Key{4}}
	p.Execute(ctx)
	if string(ctx.writes[4]) != "orig" {
		t.Errorf("write = %q, want %q", ctx.writes[4], "orig")
	}
}

func TestFuncProc(t *testing.T) {
	ran := false
	p := &FuncProc{
		Reads:  []Key{1},
		Writes: []Key{2},
		Fn:     func(ctx ExecCtx) { ran = true; ctx.Write(2, ctx.Read(1)) },
	}
	ctx := newFakeCtx(map[Key][]byte{1: []byte("x")})
	p.Execute(ctx)
	if !ran || string(ctx.writes[2]) != "x" {
		t.Errorf("FuncProc did not run as expected: ran=%v writes=%v", ran, ctx.writes)
	}
}

func BenchmarkNormalizeKeys(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]Key, 20)
	for i := range base {
		base[i] = Key(rng.Uint64() % 1000)
	}
	buf := make([]Key, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		NormalizeKeys(buf)
	}
}
