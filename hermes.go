// Package hermes is a from-scratch Go reproduction of "Don't Look Back,
// Look into the Future: Prescient Data Partitioning and Migration for
// Deterministic Database Systems" (Lin et al., SIGMOD 2021): a
// Calvin-style deterministic distributed database whose transaction
// router jointly performs load balancing, dynamic data (re-)partitioning,
// and live data migration by analyzing whole batches of queued future
// transactions.
//
// The package exposes the emulated cluster — every node runs its own
// storage shard, deterministic lock manager, and routing-policy replica
// inside one process, connected by a latency-modelled transport — plus
// every routing policy the paper evaluates (Hermes's prescient routing
// and the Calvin, G-Store+, LEAP, and T-Part baselines, with Clay/Schism/
// Squall in the experiment harness).
//
// Quick start:
//
//	db, err := hermes.Open(hermes.Options{Nodes: 4, Rows: 100_000})
//	if err != nil { ... }
//	defer db.Close()
//	db.LoadUniform(64)
//	err = db.ExecWait(0, &hermes.OpProc{
//	    Reads:  []hermes.Key{hermes.MakeKey(0, 1), hermes.MakeKey(0, 99_000)},
//	    Writes: []hermes.Key{hermes.MakeKey(0, 1)},
//	    Value:  []byte("updated"),
//	})
package hermes

import (
	"fmt"
	"time"

	"hermes/internal/core"
	"hermes/internal/engine"
	"hermes/internal/fusion"
	"hermes/internal/metrics"
	"hermes/internal/network"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/sequencer"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// Re-exported core types so applications only import this package.
type (
	// Key identifies a record (table-tagged row id).
	Key = tx.Key
	// NodeID identifies a machine node / partition.
	NodeID = tx.NodeID
	// Procedure is a deterministic stored procedure with declared
	// read/write-sets.
	Procedure = tx.Procedure
	// ExecCtx is the procedure's database access interface.
	ExecCtx = tx.ExecCtx
	// OpProc is the ready-made read/modify/write procedure.
	OpProc = tx.OpProc
	// FuncProc adapts a function to the Procedure interface.
	FuncProc = tx.FuncProc
	// Partitioner maps keys to home partitions.
	Partitioner = partition.Partitioner
	// Breakdown is the per-transaction latency decomposition.
	Breakdown = metrics.Breakdown
	// Batch is one totally ordered request batch (checkpoint tails).
	Batch = tx.Batch
)

// MakeKey builds a key for a row in a table.
func MakeKey(table uint8, row uint64) Key { return tx.MakeKey(table, row) }

// Policy selects the transaction routing algorithm — the only difference
// between the systems the paper compares.
type Policy string

// Available routing policies.
const (
	// PolicyHermes is the paper's prescient transaction routing with
	// data fusion and a bounded fusion table (§3).
	PolicyHermes Policy = "hermes"
	// PolicyCalvin is vanilla Calvin: multi-master execution over static
	// partitions.
	PolicyCalvin Policy = "calvin"
	// PolicyGStore is the G-Store+ look-present baseline: pull to a
	// majority master, write back after commit.
	PolicyGStore Policy = "g-store"
	// PolicyLEAP is the LEAP look-present baseline: migrate records to
	// the majority master.
	PolicyLEAP Policy = "leap"
	// PolicyTPart is the T-Part routing baseline: balanced single-master
	// routing with forward pushing, no persistent migration.
	PolicyTPart Policy = "t-part"
)

// Options configures Open. Zero values get sensible defaults.
type Options struct {
	// Nodes is the number of (initially active) server nodes.
	Nodes int
	// StandbyNodes are additional nodes created inactive for later
	// scale-out via Provision.
	StandbyNodes int
	// Rows sizes the default single-table database for LoadUniform and
	// the default range partitioner.
	Rows uint64
	// Policy picks the routing algorithm (default PolicyHermes).
	Policy Policy
	// Base overrides the static home partitioning (default: uniform
	// range over Rows and Nodes; required if Rows is 0).
	Base Partitioner
	// FusionCapacity bounds Hermes's fusion table in entries (default
	// 2.5% of Rows, the paper's working bound from §4.1).
	FusionCapacity int
	// Alpha is the load-imbalance tolerance θ = ⌈b/n·(1+α)⌉.
	Alpha float64
	// BatchSize and BatchInterval configure the sequencer.
	BatchSize     int
	BatchInterval time.Duration
	// SeqStandbys adds standby sequencer replicas that mirror the sealed
	// batch stream before it is delivered, making the total-order service
	// itself fault tolerant: CrashLeader kills the current leader and the
	// lowest-rank live standby deterministically promotes itself (see
	// docs/RECOVERY.md). 0 (the default) keeps the single-leader
	// configuration with zero replication overhead.
	SeqStandbys int
	// SeqHeartbeat is the leader's heartbeat interval and
	// SeqFailoverTimeout the silence threshold after which the first
	// standby promotes itself (defaults 5ms / 50ms; only meaningful with
	// SeqStandbys > 0).
	SeqHeartbeat       time.Duration
	SeqFailoverTimeout time.Duration
	// NetLatency is the one-way network latency between nodes (0 = off);
	// NetBandwidth in bytes/s adds a size-proportional term (0 = off).
	NetLatency   time.Duration
	NetBandwidth float64
	// StorageDelay is a per-record storage access cost (0 = off).
	StorageDelay time.Duration
	// Executors bounds concurrent transaction execution per node
	// (default 4; negative = unbounded). ExecCost is the simulated CPU
	// time per executed transaction (0 = off). Together they set a
	// node's saturation throughput.
	Executors int
	ExecCost  time.Duration
	// ExecMode selects the admission engine: "lock" (default, the
	// conservative ordered lock manager) or "queue" (queue-oriented
	// zero-lock execution — per-key operation queues planned at schedule
	// time and drained by bucket-owner workers; see docs/PERF.md). Final
	// state is byte-identical across modes for the same input.
	ExecMode string
	// StatsWindow is the throughput window (default 1s).
	StatsWindow time.Duration
	// Reliable interposes the reliable-delivery layer (sequencing, acks,
	// retransmission, dedup, delivery logs) under every node. Required for
	// CrashNode/RestartNode and for surviving lossy transports; costs a
	// little throughput, so it is opt-in.
	Reliable bool
	// Telemetry attaches the observability layer: a per-transaction
	// lifecycle tracer and a gauge/counter registry, servable over HTTP
	// via DB.Telemetry().Handler() (see docs/OBSERVABILITY.md). It is
	// strictly observation-only — enabling it cannot change any
	// deterministic outcome — and costs a few percent of throughput.
	Telemetry bool
	// TelemetryRingSize overrides the tracer's per-node event ring
	// capacity (default 16384; rounded up to a power of two).
	TelemetryRingSize int
}

// DB is an open emulated cluster.
type DB struct {
	cluster *engine.Cluster
	opts    Options
	base    Partitioner
}

// Open builds and starts a cluster.
func Open(opts Options) (*DB, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("hermes: Nodes must be positive")
	}
	if opts.Policy == "" {
		opts.Policy = PolicyHermes
	}
	base := opts.Base
	if base == nil {
		if opts.Rows == 0 {
			return nil, fmt.Errorf("hermes: need Rows or an explicit Base partitioner")
		}
		base = partition.NewUniformRange(0, opts.Rows, opts.Nodes)
	}
	if opts.FusionCapacity == 0 && opts.Rows > 0 {
		opts.FusionCapacity = int(opts.Rows / 40) // 2.5% of the database
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 100
	}
	if opts.BatchInterval == 0 {
		opts.BatchInterval = 5 * time.Millisecond
	}
	pf, err := policyFactory(opts.Policy, base, opts)
	if err != nil {
		return nil, err
	}
	var lat network.LatencyModel
	if opts.NetLatency > 0 || opts.NetBandwidth > 0 {
		lat = network.UniformLatency(opts.NetLatency, opts.NetBandwidth)
	}
	ids := make([]tx.NodeID, opts.Nodes+opts.StandbyNodes)
	for i := range ids {
		ids[i] = tx.NodeID(i)
	}
	var tel *telemetry.Telemetry
	if opts.Telemetry {
		tel = telemetry.New(ids, opts.TelemetryRingSize)
	}
	cl, err := engine.New(engine.Config{
		Nodes:        ids,
		Active:       ids[:opts.Nodes],
		Policy:       pf,
		Seq: sequencer.Config{
			BatchSize: opts.BatchSize, Interval: opts.BatchInterval,
			Standbys:        opts.SeqStandbys,
			Heartbeat:       opts.SeqHeartbeat,
			FailoverTimeout: opts.SeqFailoverTimeout,
		},
		Latency:      lat,
		StorageDelay: opts.StorageDelay,
		Executors:    opts.Executors,
		ExecCost:     opts.ExecCost,
		ExecMode:     opts.ExecMode,
		Window:       opts.StatsWindow,
		Reliable:     opts.Reliable,
		Telemetry:    tel,
	})
	if err != nil {
		return nil, err
	}
	return &DB{cluster: cl, opts: opts, base: base}, nil
}

// PolicyFactoryFor builds the engine policy factory for a routing policy
// over an explicit base partitioning — the identical construction Open
// uses. Multi-process cluster workers call it so every process (and the
// in-process emulation their digests are compared against) builds the same
// replica: alpha is the imbalance tolerance, fusionCapacity bounds
// Hermes's fusion table (Open defaults it to Rows/40).
func PolicyFactoryFor(p Policy, base Partitioner, alpha float64, fusionCapacity int) (engine.PolicyFactory, error) {
	return policyFactory(p, base, Options{Alpha: alpha, FusionCapacity: fusionCapacity})
}

func policyFactory(p Policy, base Partitioner, opts Options) (engine.PolicyFactory, error) {
	switch p {
	case PolicyHermes:
		cfg := core.Config{
			Alpha:          opts.Alpha,
			FusionCapacity: opts.FusionCapacity,
			FusionPolicy:   fusion.LRU,
		}
		return func(a []tx.NodeID) router.Policy { return core.New(base, a, cfg) }, nil
	case PolicyCalvin:
		return func(a []tx.NodeID) router.Policy { return router.NewCalvin(base, a) }, nil
	case PolicyGStore:
		return func(a []tx.NodeID) router.Policy { return router.NewGStore(base, a) }, nil
	case PolicyLEAP:
		return func(a []tx.NodeID) router.Policy { return router.NewLEAP(base, a) }, nil
	case PolicyTPart:
		return func(a []tx.NodeID) router.Policy { return router.NewTPart(base, a, opts.Alpha) }, nil
	default:
		return nil, fmt.Errorf("hermes: unknown policy %q", p)
	}
}

// Exec submits a transaction through node via's front-end and returns a
// channel closed on completion.
func (db *DB) Exec(via NodeID, proc Procedure) (<-chan struct{}, error) {
	return db.cluster.Submit(via, proc)
}

// ExecWait submits and blocks until the transaction completes.
func (db *DB) ExecWait(via NodeID, proc Procedure) error {
	return db.cluster.SubmitAndWait(via, proc)
}

// Load seeds one record at its home partition. Use before running
// transactions.
func (db *DB) Load(k Key, v []byte) { db.cluster.LoadRecord(k, v) }

// LoadUniform seeds Rows records of the given payload size, counters
// zeroed.
func (db *DB) LoadUniform(payload int) {
	for i := uint64(0); i < db.opts.Rows; i++ {
		v := make([]byte, payload)
		db.cluster.LoadRecord(tx.MakeKey(0, i), v)
	}
}

// Read fetches a record through current placement (diagnostics; not the
// transactional path).
func (db *DB) Read(k Key) ([]byte, bool) { return db.cluster.ReadRecord(k) }

// Provision activates and/or deactivates nodes through a totally ordered
// control transaction (§3.3).
func (db *DB) Provision(add, remove []NodeID) error {
	done, err := db.cluster.Provision(add, remove)
	if err != nil {
		return err
	}
	<-done
	return nil
}

// Migrate moves the given keys to node to using chunked cold-migration
// transactions (Squall-style). Hot keys tracked by the fusion table are
// skipped automatically (§3.3). It blocks until all chunks commit.
func (db *DB) Migrate(keys []Key, to NodeID, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = 1000
	}
	for start := 0; start < len(keys); start += chunkSize {
		end := start + chunkSize
		if end > len(keys) {
			end = len(keys)
		}
		if err := db.ExecWait(to, &tx.MigrationProc{Keys: keys[start:end], To: to}); err != nil {
			return err
		}
	}
	return nil
}

// Drain waits for all in-flight transactions to finish everywhere.
func (db *DB) Drain(timeout time.Duration) bool { return db.cluster.Drain(timeout) }

// CrashNode kills a node: all of its volatile state is lost and
// transactions that need it stall deterministically until RestartNode.
// Requires Options.Reliable and a prior successful Checkpoint.
func (db *DB) CrashNode(id NodeID) error { return db.cluster.CrashNode(id) }

// RestartNode recovers a crashed node by replaying its logged input from
// the last checkpoint, then rejoins it to live traffic.
func (db *DB) RestartNode(id NodeID) error { return db.cluster.RestartNode(id) }

// CrashLeader kills the current sequencer leader. The lowest-rank live
// standby detects the silence, promotes itself into a new epoch, and
// resumes sealing from its replicated high-water mark; in-flight
// submissions are redirected and deduplicated so every transaction is
// sequenced exactly once. Requires Options.Reliable, Options.SeqStandbys
// ≥ 1, and a prior successful Checkpoint.
func (db *DB) CrashLeader() error { return db.cluster.CrashLeader() }

// RestartLeader restarts the replica killed by CrashLeader as a standby
// of the new epoch, once a promotion has happened: it restores the
// sequencing state from the last checkpoint, replays its logged delivery
// stream, and rejoins the heartbeat/promotion order.
func (db *DB) RestartLeader() error { return db.cluster.RestartLeader() }

// Tail returns the logged batches with sequence ≥ seq — the post-checkpoint
// input to hand to RecoverWithTail.
func (db *DB) Tail(seq uint64) []*Batch { return db.cluster.TailSince(seq) }

// Close shuts the cluster down.
func (db *DB) Close() { db.cluster.Stop() }

// Stats is a snapshot of run-wide measurements.
type Stats struct {
	Committed    int64
	Aborted      int64
	Migrations   int64
	RemoteReads  int64
	NetworkMsgs  int64
	NetworkBytes int64
	// MigrationBytes counts migrated payload bytes landed at their
	// destinations; MigrationsInFlight is the instantaneous gauge of
	// transactions currently executing with attached migrations.
	MigrationBytes     int64
	MigrationsInFlight int64
	// Throughput is committed transactions per StatsWindow, oldest first.
	Throughput []int64
	// AvgBreakdown is the mean per-transaction latency decomposition.
	AvgBreakdown Breakdown
	// P50 and P99 are approximate total-latency quantiles.
	P50, P99 time.Duration
	// Retransmits and DupsDropped count the reliable layer's recovery
	// actions (zero without Options.Reliable).
	Retransmits int64
	DupsDropped int64
	// Crashes / Recoveries / Downtime summarize node kills and restarts.
	Crashes    int64
	Recoveries int64
	Downtime   time.Duration
	// SeqEpoch is the sequencer leadership epoch (0 until a failover);
	// SeqLeader the replica currently sealing batches. SeqFailovers counts
	// standby promotions and SeqHeartbeatMisses the heartbeat deadlines
	// standbys saw pass in silence.
	SeqEpoch           uint64
	SeqLeader          NodeID
	SeqFailovers       int64
	SeqHeartbeatMisses int64
	// RoutingBatches counts batch-routing invocations across all
	// replicas; RoutingPerBatch / RoutingPerTxn are the mean prescient
	// analysis cost (§3.2.4).
	RoutingBatches  int64
	RoutingPerBatch time.Duration
	RoutingPerTxn   time.Duration
}

// Stats snapshots the cluster's metrics.
func (db *DB) Stats() Stats {
	col := db.cluster.Collector()
	msgs, bytes := db.cluster.NetStats().Totals()
	rel := db.cluster.ReliableStats()
	routing := col.Routing()
	return Stats{
		Committed:          col.Committed(),
		Aborted:            col.Aborted(),
		Migrations:         col.Migrations(),
		RemoteReads:        col.RemoteReads(),
		NetworkMsgs:        msgs,
		NetworkBytes:       bytes,
		MigrationBytes:     col.MigrationBytes(),
		MigrationsInFlight: col.MigrationsInFlight(),
		Throughput:         col.Throughput(),
		AvgBreakdown:       col.AvgBreakdown(),
		P50:                col.LatencyQuantile(0.5),
		P99:                col.LatencyQuantile(0.99),
		Retransmits:        rel.Retransmits,
		DupsDropped:        rel.DupsDropped,
		Crashes:            col.Crashes(),
		Recoveries:         col.Recoveries(),
		Downtime:           col.Downtime(),
		SeqEpoch:           db.cluster.SeqEpoch(),
		SeqLeader:          db.cluster.SeqLeader(),
		SeqFailovers:       db.cluster.SeqFailovers(),
		SeqHeartbeatMisses: db.cluster.SeqHeartbeatMisses(),
		RoutingBatches:     routing.Batches,
		RoutingPerBatch:    routing.PerBatch,
		RoutingPerTxn:      routing.PerTxn,
	}
}

// Telemetry returns the observability handle (nil unless
// Options.Telemetry): the lifecycle tracer, the metric registry, and the
// HTTP surface via Telemetry().Handler().
func (db *DB) Telemetry() *telemetry.Telemetry { return db.cluster.Telemetry() }

// Fingerprint hashes the full cluster state (storage + fusion tables);
// identical inputs always produce identical fingerprints.
func (db *DB) Fingerprint() uint64 { return db.cluster.Fingerprint() }

// NodeFingerprints returns a per-node state digest (storage contents
// combined with the node's fusion-table fingerprint). Determinism
// tooling compares these across runs: unlike the cluster-wide
// Fingerprint, they pin down *which* node diverged, and they catch
// compensating per-node differences the aggregate could mask.
func (db *DB) NodeFingerprints() map[NodeID]uint64 {
	out := make(map[NodeID]uint64)
	for _, d := range db.cluster.NodeDigests() {
		out[d.Node] = d.Store ^ d.Fusion*0x9E3779B97F4A7C15
	}
	return out
}

// Cluster exposes the underlying engine cluster for advanced integration
// (experiment harnesses, workload drivers).
func (db *DB) Cluster() *engine.Cluster { return db.cluster }
