package hermes_test

import (
	"testing"
	"time"

	"hermes/internal/chaos"
	"hermes/internal/harness"
)

// TestClusterNetChaos is the self-healing acceptance run: three real
// hermesd processes with every inter-process data link routed through the
// seeded netchaos proxy (asymmetric WAN latency between node groups, one
// mid-stream reset of the leader link, a 2-second bidirectional partition
// that heals on its own), plus a SIGKILL of worker 2 mid-run that only the
// heartbeat supervisor — never the test — repairs. The run must commit
// every transaction and quiesce to digests byte-identical to the
// fault-free in-process twin: below the reliable layer, all these faults
// are allowed to shift timing and nothing else.
func TestClusterNetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster netchaos skipped in -short mode")
	}
	if _, err := harness.HermesdBinary(); err != nil {
		t.Fatalf("building hermesd: %v", err)
	}

	// Latencies are CI-scale (the WAN bench uses the realistic 5ms/40ms
	// profile); the partition keeps its full 2s so heal-and-catch-up is
	// exercised for real.
	sched := chaos.ClusterWANKillSchedule(
		e2eSeed, time.Millisecond, 8*time.Millisecond, 2*time.Millisecond, 2*time.Second)

	dir := t.TempDir()
	saveArtifactsOnFailure(t, dir)
	c, err := harness.StartCluster(harness.ClusterConfig{
		Workers:   e2eWorkers,
		Policy:    "hermes",
		Rows:      e2eRows,
		Payload:   e2ePayload,
		BatchSize: e2eBatch,
		Net:       sched.Net,
		Dir:       dir,
	})
	if err != nil {
		t.Fatalf("starting cluster: %v", err)
	}
	defer c.Close()
	if err := c.Seed(); err != nil {
		t.Fatalf("seeding cluster: %v", err)
	}

	super := c.StartSupervisor(harness.SupervisorConfig{
		Interval: 100 * time.Millisecond,
		Misses:   2,
	})

	spec := harness.WorkloadSpec{
		Kind:       harness.WorkloadYCSB,
		Seed:       e2eSeed,
		Txns:       e2eTxns,
		Rows:       e2eRows,
		KeysPerTxn: e2eKeysPerTxn,
		Payload:    e2ePayload,
		Theta:      e2eTheta,
		Window:     e2eWindow,
	}
	if err := c.Run(spec); err != nil {
		t.Fatalf("starting run: %v", err)
	}
	// Arm the fault timeline: the reset and the partition fire at their
	// offsets from here, while the WAN latency rules are already live.
	c.NetPlane().Start()

	// SIGKILL worker 2 at its scheduled point in the committed stream. No
	// RestartWorker follows: the supervisor must notice the dead control
	// plane and bring the process back on its own.
	for _, kill := range sched.Kills {
		killAt := int64(float64(spec.Txns) * kill.AfterFrac)
		deadline := time.Now().Add(120 * time.Second)
		for {
			st, err := c.Status()
			if err != nil {
				t.Fatalf("polling run status: %v", err)
			}
			if st.Completed >= killAt || st.Done {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("run never reached the kill point: %+v", st)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := c.KillWorker(kill.Worker); err != nil {
			t.Fatalf("killing worker %d: %v", kill.Worker, err)
		}
	}

	res, err := c.WaitRun(240 * time.Second)
	if err != nil {
		t.Fatalf("waiting for run: %v", err)
	}
	if res.Committed != e2eTxns {
		t.Fatalf("cluster committed %d of %d transactions", res.Committed, e2eTxns)
	}
	if err := c.Quiesce(60 * time.Second); err != nil {
		t.Fatalf("quiescing: %v", err)
	}

	// The faults must actually have happened: the supervisor restarted the
	// victim (incarnation bumped), and the proxy plane reset live streams.
	if got := super.Stats().TotalRestarts(); got == 0 {
		t.Error("supervisor performed no restarts; the kill was repaired by something else or not at all")
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("collecting stats: %v", err)
	}
	if inc := stats[sched.Kills[0].Worker].Incarnation; inc < 2 {
		t.Errorf("killed worker reports incarnation %d, want >= 2", inc)
	}
	ns := c.NetPlane().Stats()
	if ns.TotalResets() == 0 {
		t.Error("fault plane reset no connections; the reset/partition events were a no-op")
	}

	twin, err := harness.RunTwin(harness.TwinConfig{
		Workers:   e2eWorkers,
		Policy:    "hermes",
		Rows:      e2eRows,
		Payload:   e2ePayload,
		BatchSize: e2eBatch,
	}, spec)
	if err != nil {
		t.Fatalf("running in-process twin: %v", err)
	}
	digests, err := c.Digests()
	if err != nil {
		t.Fatalf("collecting digests: %v", err)
	}
	if len(digests) != len(twin.Digests) {
		t.Fatalf("cluster produced %d digests, twin %d", len(digests), len(twin.Digests))
	}
	for i := range digests {
		if digests[i] != twin.Digests[i] {
			t.Errorf("node %d digest diverges from the in-process twin under %s:\n  cluster: %+v\n  twin:    %+v",
				i, sched, digests[i], twin.Digests[i])
		}
	}
	if !t.Failed() {
		t.Logf("%s: %d txns, %d supervisor restarts, %d stream resets, digests match twin",
			sched, res.Committed, super.Stats().TotalRestarts(), ns.TotalResets())
	}
}
