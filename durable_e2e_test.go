package hermes_test

import (
	"testing"
	"time"

	"hermes/internal/harness"
)

// Durable-restart e2e scale: 3 real OS processes with fsync'd journals,
// a durable checkpoint taken between two workload phases, and a worker
// SIGKILLed mid-phase-two with its page-cache surrogate wiped — so the
// restart rebuilds strictly from what reached disk.
const (
	durWorkers    = 3
	durRows       = 4000
	durPhase1Txns = 600 // multiple of durBatch: the phase-1 tail flush is a no-op
	durPhase2Txns = 600
	durBatch      = 25
	durWindow     = 50
	durPayload    = 64
	durTheta      = 0.8
	durKeysPerTxn = 3
	durSeed       = 42
	durKillWorker = 2
)

// TestClusterDurableRestart is the crash-consistency claim end to end: run
// phase one, checkpoint every worker durably (rotating the journals), run
// the stream's continuation, and mid-way SIGKILL a worker AND wipe
// everything its disk never fsynced. The restarted process may use nothing
// but its on-disk checkpoint + journal suffix — and the cluster's final
// digests must still be byte-identical to an in-process twin that executed
// the whole stream with no faults at all. Runs in both execution modes.
func TestClusterDurableRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process durable e2e skipped in -short mode")
	}
	if _, err := harness.HermesdBinary(); err != nil {
		t.Fatalf("building hermesd: %v", err)
	}
	for _, mode := range []string{"lock", "queue"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			runDurableRestartCase(t, mode)
		})
	}
}

func runDurableRestartCase(t *testing.T, execMode string) {
	dir := t.TempDir()
	saveArtifactsOnFailure(t, dir)

	c, err := harness.StartCluster(harness.ClusterConfig{
		Workers:   durWorkers,
		Policy:    "hermes",
		Rows:      durRows,
		Payload:   durPayload,
		BatchSize: durBatch,
		ExecMode:  execMode,
		Fsync:     "batch",
		Dir:       dir,
	})
	if err != nil {
		t.Fatalf("starting cluster: %v", err)
	}
	defer c.Close()
	if err := c.Seed(); err != nil {
		t.Fatalf("seeding cluster: %v", err)
	}

	base := harness.WorkloadSpec{
		Kind:       harness.WorkloadYCSB,
		Seed:       durSeed,
		Rows:       durRows,
		KeysPerTxn: durKeysPerTxn,
		Payload:    durPayload,
		Theta:      durTheta,
		Window:     durWindow,
	}

	// Phase one: the stream's prefix, then a durable checkpoint on every
	// worker. Phase-one length is a batch multiple, so its tail flush seals
	// nothing early and batch composition matches one continuous run.
	phase1 := base
	phase1.Txns = durPhase1Txns
	if err := c.Run(phase1); err != nil {
		t.Fatalf("starting phase 1: %v", err)
	}
	if res, err := c.WaitRun(120 * time.Second); err != nil {
		t.Fatalf("phase 1: %v", err)
	} else if res.Committed != durPhase1Txns {
		t.Fatalf("phase 1 committed %d of %d", res.Committed, durPhase1Txns)
	}
	if err := c.CheckpointAll(30 * time.Second); err != nil {
		t.Fatalf("checkpointing: %v", err)
	}

	// Phase two: the exact continuation (Skip consumes phase one from the
	// same RNG). Mid-run, worker 2 dies hard: SIGKILL plus a page-cache
	// wipe that truncates every file back to its last-fsynced mark.
	phase2 := base
	phase2.Skip = durPhase1Txns
	phase2.Txns = durPhase2Txns
	if err := c.Run(phase2); err != nil {
		t.Fatalf("starting phase 2: %v", err)
	}
	killAt := int64(durPhase2Txns * 2 / 5)
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Status()
		if err != nil {
			t.Fatalf("polling run status: %v", err)
		}
		if st.Completed >= killAt || st.Done {
			if st.Done {
				t.Logf("phase 2 finished before the kill point (%d/%d); killing post-run", st.Completed, durPhase2Txns)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase 2 never reached the kill point: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.KillWorker(durKillWorker); err != nil {
		t.Fatalf("killing worker %d: %v", durKillWorker, err)
	}
	if err := c.WipeWorkerStorage(durKillWorker); err != nil {
		t.Fatalf("wiping worker %d storage: %v", durKillWorker, err)
	}
	if err := c.RestartWorker(durKillWorker); err != nil {
		t.Fatalf("restarting worker %d: %v", durKillWorker, err)
	}

	res, err := c.WaitRun(120 * time.Second)
	if err != nil {
		for i := 0; i < durWorkers; i++ {
			var q map[string]any
			if gerr := c.Get(i, "/quiesce", &q); gerr == nil {
				t.Logf("worker %d quiesce: %+v", i, q)
			}
		}
		var next map[string]any
		if gerr := c.Get(0, "/next", &next); gerr == nil {
			t.Logf("leader next: %+v", next)
		}
		t.Fatalf("waiting for phase 2: %v", err)
	}
	if res.Committed != durPhase2Txns {
		t.Fatalf("phase 2 committed %d of %d", res.Committed, durPhase2Txns)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatalf("quiescing: %v", err)
	}

	digests, err := c.Digests()
	if err != nil {
		t.Fatalf("collecting digests: %v", err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("collecting stats: %v", err)
	}
	st := stats[durKillWorker]
	if !st.RestoredCheckpoint {
		t.Errorf("restarted worker %d did not restore a checkpoint: %+v", durKillWorker, st)
	}
	if st.JournalBase == 0 {
		t.Errorf("restarted worker %d journal base = 0, want a rotated journal", durKillWorker)
	}
	if st.Incarnation < 2 {
		t.Errorf("restarted worker %d incarnation = %d, want >= 2", durKillWorker, st.Incarnation)
	}
	for i, ps := range stats {
		// The restarted worker's save counter is legitimately zero: its
		// checkpoint was written by the previous incarnation.
		if i != durKillWorker && ps.CheckpointSaves < 1 {
			t.Errorf("worker %d reports %d checkpoint saves, want >= 1", i, ps.CheckpointSaves)
		}
		if ps.JournalFsyncs == 0 {
			t.Errorf("worker %d reports zero journal fsyncs under policy batch", i)
		}
	}

	// The fault-free twin executes the whole stream in one go; the
	// checkpointed, crashed, wiped and restarted cluster must match it
	// byte for byte.
	full := base
	full.Txns = durPhase1Txns + durPhase2Txns
	twin, err := harness.RunTwin(harness.TwinConfig{
		Workers:   durWorkers,
		Policy:    "hermes",
		Rows:      durRows,
		Payload:   durPayload,
		BatchSize: durBatch,
		ExecMode:  execMode,
	}, full)
	if err != nil {
		t.Fatalf("running in-process twin: %v", err)
	}
	if twin.Result.Committed != int64(full.Txns) {
		t.Fatalf("twin committed %d of %d", twin.Result.Committed, full.Txns)
	}
	if len(digests) != len(twin.Digests) {
		t.Fatalf("cluster produced %d digests, twin %d", len(digests), len(twin.Digests))
	}
	for i := range digests {
		if digests[i] != twin.Digests[i] {
			t.Errorf("node %d digest diverges from the fault-free twin:\n  cluster: %+v\n  twin:    %+v",
				i, digests[i], twin.Digests[i])
		}
	}
	if !t.Failed() {
		t.Logf("%s: %d+%d txns, checkpoint + SIGKILL + page-cache wipe on worker %d, digests match twin",
			execMode, durPhase1Txns, durPhase2Txns, durKillWorker)
	}
}
