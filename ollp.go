package hermes

import (
	"fmt"
	"sync/atomic"

	"hermes/internal/tx"
)

// OLLP implements Calvin's Optimistic Lock Location Prediction (§2.1 of
// the paper): transactions whose read/write-sets depend on data they have
// not read yet (e.g. a secondary-index lookup) first run a cheap,
// non-transactional reconnaissance pass to *predict* their access sets,
// then submit the full transaction with the predicted sets. The submitted
// procedure revalidates the prediction during deterministic execution; if
// the data moved in between, it aborts deterministically and the client
// retries with fresh reconnaissance.

// Planner builds a transaction from reconnaissance reads. The read
// function performs dirty (non-transactional) reads of current values —
// exactly what Calvin's reconnaissance queries are. The returned Validate
// function re-checks, *inside* the transaction with its real read values,
// that the prediction still holds.
type Planner func(read func(Key) []byte) (proc Procedure, validate func(ctx ExecCtx) bool, err error)

// ErrOLLPRetriesExhausted is returned when reconnaissance keeps going
// stale; the workload is mutating the navigation data faster than the
// transaction can chase it.
var ErrOLLPRetriesExhausted = fmt.Errorf("hermes: OLLP reconnaissance retries exhausted")

// ExecOLLP runs planner's transaction with reconnaissance-and-validate
// retries (at most maxRetries; ≤ 0 means 5). It blocks until the
// transaction commits with a valid prediction or retries are exhausted.
func (db *DB) ExecOLLP(via NodeID, planner Planner, maxRetries int) error {
	if maxRetries <= 0 {
		maxRetries = 5
	}
	read := func(k Key) []byte {
		v, _ := db.Read(k)
		return v
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		proc, validate, err := planner(read)
		if err != nil {
			return err
		}
		wrapped := &ollpProc{inner: proc, validate: validate}
		if err := db.ExecWait(via, wrapped); err != nil {
			return err
		}
		if !wrapped.stale.Load() {
			return nil
		}
		// Prediction went stale between reconnaissance and execution:
		// the deterministic abort already rolled everything back; retry.
	}
	return ErrOLLPRetriesExhausted
}

// ollpProc wraps the planned procedure with the validation step. The
// stale flag reports the deterministic validation abort back to the
// submitting client (in a multi-process deployment this rides the commit
// acknowledgement; in the emulation a shared flag is equivalent).
type ollpProc struct {
	inner    tx.Procedure
	validate func(ctx tx.ExecCtx) bool
	stale    atomic.Bool
}

// ReadSet implements Procedure.
func (p *ollpProc) ReadSet() []Key { return p.inner.ReadSet() }

// WriteSet implements Procedure.
func (p *ollpProc) WriteSet() []Key { return p.inner.WriteSet() }

// Execute implements Procedure.
func (p *ollpProc) Execute(ctx tx.ExecCtx) {
	if p.validate != nil && !p.validate(ctx) {
		p.stale.Store(true)
		ctx.Abort("ollp: stale reconnaissance")
		return
	}
	p.inner.Execute(ctx)
}
