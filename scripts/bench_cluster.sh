#!/usr/bin/env bash
# Multi-process cluster benchmark gate (docs/CLUSTER.md).
#
# Boots 3 real hermesd processes over loopback TCP via `hermes-bench
# -cluster`, drives the deterministic YCSB stream through them, replays
# the same stream on the in-process twin, and writes BENCH_cluster.json
# at the repo root: QPS, avg/p95 latency, wire bytes per transaction,
# per-process transport counters, and the gate verdict. The gate requires
# every transaction committed AND the final node digests byte-identical
# to the twin; the script exits non-zero when it fails.
#
# Usage:
#   scripts/bench_cluster.sh                          # 3 workers, ycsb, hermes
#   scripts/bench_cluster.sh -cluster-policy calvin   # extra hermes-bench flags
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_cluster.json
echo "==> go run ./cmd/hermes-bench -cluster -report $out $*"
go run ./cmd/hermes-bench -cluster -report "$out" "$@"
echo "==> wrote $out"
