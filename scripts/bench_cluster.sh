#!/usr/bin/env bash
# Multi-process cluster benchmark gate (docs/CLUSTER.md).
#
# Boots 3 real hermesd processes over loopback TCP via `hermes-bench
# -cluster`, drives the deterministic YCSB stream through them, replays
# the same stream on the in-process twin, and writes BENCH_cluster.json
# at the repo root: QPS, avg/p95 latency, wire bytes per transaction,
# per-process transport counters, and the gate verdict. A second run then
# replays the same workload under the seeded WAN fault profile (5ms
# intra-region / 40ms cross-region latency through the netchaos proxies,
# a 2s partition that heals on its own, supervisor armed) and lands as
# the "wan" section of the report. The gate requires every transaction
# committed AND the final node digests byte-identical to the twin — for
# both runs; the script exits non-zero when it fails.
#
# Usage:
#   scripts/bench_cluster.sh                          # 3 workers, ycsb, hermes
#   scripts/bench_cluster.sh -cluster-policy calvin   # extra hermes-bench flags
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_cluster.json
echo "==> go run ./cmd/hermes-bench -cluster -cluster-wan -report $out $*"
go run ./cmd/hermes-bench -cluster -cluster-wan -report "$out" "$@"
echo "==> wrote $out"
