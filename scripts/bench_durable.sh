#!/usr/bin/env bash
# Durability-cost benchmark gate (docs/RECOVERY.md, "Durability").
#
# Boots a real 3-process cluster over TCP once per journal fsync policy
# (none / batch / always), drives the identical YCSB trace through each
# (interleaved trials, median-throughput trial reported), and writes
# BENCH_durable.json at the repo root: per-policy commit throughput, p95,
# fsync counts and group-commit amortization, plus the gate verdict the
# PR requires — node digests byte-identical across all policies, and
# group commit (fsync=batch) keeping >= 70% of the no-fsync throughput.
#
# GOGC is disabled for the measurement: the workload is a fixed-size
# backlog drain, and collector pauses on a small heap add more variance
# than the effect under test.
#
# Usage:
#   scripts/bench_durable.sh                 # defaults: 4000 txns, 3 trials
#   TRIALS=5 TXNS=8000 scripts/bench_durable.sh
set -euo pipefail
cd "$(dirname "$0")/.."

txns="${TXNS:-4000}"
trials="${TRIALS:-3}"
out=BENCH_durable.json

echo "==> go run ./cmd/hermes-bench -durablebench (txns=$txns trials=$trials, GOGC=off)"
GOGC=off go run ./cmd/hermes-bench -durablebench \
    -durablebench-txns "$txns" -durablebench-trials "$trials" \
    -report "$out"
echo "==> wrote $out"
