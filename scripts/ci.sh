#!/usr/bin/env bash
# CI gate: everything a change must pass before merging.
#
# Usage:
#   scripts/ci.sh          # full gate (vet + race-enabled tests)
#   scripts/ci.sh -short   # quick local pre-push check
#
# The chaos equivalence suite (internal/chaos) runs as part of the normal
# test sweep; see docs/TESTING.md for reproducing a failing fault schedule
# from the seed in its failure message.
set -euo pipefail
cd "$(dirname "$0")/.."

short_flag=""
if [[ "${1:-}" == "-short" ]]; then
    short_flag="-short"
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ${short_flag} ./..."
go test -race ${short_flag} ./...

# Smoke-run the routing benchmark (1 iteration) so it can't silently rot;
# scripts/bench.sh runs the full gated comparison against the baseline.
echo "==> go test -bench=BenchmarkPrescientRouting -benchtime=1x ./internal/core"
go test -run '^$' -bench=BenchmarkPrescientRouting -benchtime=1x ./internal/core

echo "==> CI gate passed"
