#!/usr/bin/env bash
# CI gate: everything a change must pass before merging.
#
# Usage:
#   scripts/ci.sh          # full gate (vet + race-enabled tests)
#   scripts/ci.sh -short   # quick local pre-push check
#
# The chaos equivalence suite (internal/chaos) runs as part of the normal
# test sweep; see docs/TESTING.md for reproducing a failing fault schedule
# from the seed in its failure message.
set -euo pipefail
cd "$(dirname "$0")/.."

short_flag=""
if [[ "${1:-}" == "-short" ]]; then
    short_flag="-short"
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ${short_flag} ./..."
go test -race ${short_flag} ./...

# Crash-recovery gate: reliable transport, node kill/restart, checkpoint+
# tail recovery, and the lossy+crash chaos schedules. The general sweep
# above already covers these when run full; this named step keeps the
# recovery claim pinned even under -short (see docs/RECOVERY.md).
echo "==> crash-recovery suite (-race)"
go test -race -count=1 \
    -run 'Reliable|Crash|Recover|Checkpoint|LossAndCrash|LossySchedule|TCPTransport' \
    ./internal/network ./internal/engine ./internal/chaos .

# Leader-failover gate: killing the total-order leader — alone and
# combined with the lossy + worker-crash schedule — must quiesce to node
# digests byte-identical to a fault-free run for every policy, with every
# transaction sequenced exactly once (see docs/RECOVERY.md, "Leader
# failover"). Pinned by name so it survives -short.
echo "==> leader-failover gate (-race)"
go test -race -count=1 \
    -run 'TestEquivalenceLeaderKill|TestLeaderKillSchedule|TestLeaderFailover|TestLeaderCrashValidation|TestGroup|TestFrontend' \
    ./internal/chaos ./internal/engine ./internal/sequencer .

# Telemetry-equivalence gate: tracing fully on vs fully off must quiesce
# to byte-identical node digests on every policy, including the lossy +
# mid-run-crash schedule — telemetry is an observer, never a participant
# (see docs/OBSERVABILITY.md). Pinned by name so it survives -short.
echo "==> telemetry-equivalence gate (-race)"
go test -race -count=1 -run 'TestTelemetryEquivalence' ./internal/chaos

# Observability gate: the cluster trace plane. Histogram correctness
# (bucket boundaries, concurrent-writer merge, quantile property test),
# the binary event-export wire format, the tail sampler, the multi-ring
# /trace merge, and the 3-process cluster trace export — schema-valid
# Perfetto output, >=99% committed txns with complete cross-process span
# chains, clock-aligned monotonic critical paths, and byte-identical
# cluster digests with export on vs off (see docs/OBSERVABILITY.md,
# "Cluster tracing"). Pinned by name so it survives -short; the list
# guard fails loudly if a rename ever empties the match set.
echo "==> observability gate (-race)"
obs_run='TestHist|TestPhase|TestTail|TestTrace|TestEventStream|TestSlowPhasesClockEndpoints'
listed=$(go test -list "${obs_run}" ./internal/telemetry | grep -c '^Test' || true)
if [[ "${listed}" -eq 0 ]]; then
    echo "observability gate matched no telemetry tests: the suite was renamed or deleted" >&2
    exit 1
fi
go test -race -count=1 -run "${obs_run}" ./internal/telemetry
cluster_trace_run='TestStitchTimelines|TestWritePerfettoSchema|TestClusterTraceExport|TestClusterTraceOnOffDigestEquivalence|TestNodeServerTraceEndpointsNoLeak|TestCollectTraceKilledWorker'
listed=$(go test -list "${cluster_trace_run}" ./internal/harness | grep -c '^Test' || true)
if [[ "${listed}" -eq 0 ]]; then
    echo "observability gate matched no harness trace tests: the suite was renamed or deleted" >&2
    exit 1
fi
go test -count=1 -timeout 10m ${short_flag} -run "${cluster_trace_run}" ./internal/harness

# Exec-equivalence gate: the queue-oriented zero-lock executor must quiesce
# to node digests byte-identical to the conservative lock manager for every
# routing policy, including the lossy + mid-run-crash and leader-kill
# schedules (see docs/PERF.md, "Queue-oriented execution"). Pinned by name
# so it survives -short.
echo "==> exec-equivalence gate (lock vs queue, -race)"
go test -race -count=1 \
    -run 'TestExecModeEquivalence|TestQueueMode' \
    ./internal/chaos ./internal/engine
go test -race -count=1 ./internal/qexec

# Disk-fault gate: the durability layer under injected storage faults.
# Covers the fault-injecting filesystem (torn/short writes, failed and
# lying fsyncs, power-cut truncation), the checksummed journal's recovery
# classification (torn tail vs corrupt frame), group-commit ack gating,
# and the chaos schedules that run every routing policy over live disk
# faults with offline crash-recovery checks (see docs/RECOVERY.md,
# "Durability"). Pinned by name so it survives -short; the list guard
# fails loudly if a rename ever empties the match set.
echo "==> disk-fault gate (-race)"
disk_run='TestDisk|TestJournal|TestWriteF|TestCrash|TestLyingSync|TestUnsyncedRename|TestInjectedWrite|TestWipeUnsynced|TestOSFS'
disk_pkgs="./internal/chaos ./internal/diskio ./internal/network"
listed=$(go test -list "${disk_run}" ${disk_pkgs} | grep -c '^Test' || true)
if [[ "${listed}" -eq 0 ]]; then
    echo "disk-fault gate matched no tests: the suite was renamed or deleted" >&2
    exit 1
fi
go test -race -count=1 -run "${disk_run}" ${disk_pkgs}

# Multi-process cluster e2e gate: boots real hermesd processes over
# loopback TCP, SIGKILLs and restarts a worker mid-run, and requires the
# final node digests byte-identical to the in-process twin for the same
# seed (see docs/CLUSTER.md). The tests skip themselves under -short —
# they spawn OS processes — so this step honors the quick pre-push mode.
# Set CLUSTER_E2E_ARTIFACTS to a directory to keep process logs from a
# failing run.
echo "==> cluster e2e gate (multi-process, TCP)"
go test -count=1 -timeout 10m ${short_flag} \
    -run 'TestClusterE2E|TestClusterKillRestart|TestClusterSIGTERMDrains|TestClusterDurableRestart|TestNodeServer|TestRunTwin' \
    . ./internal/harness

# Cluster netchaos gate: the self-healing acceptance run. Three real
# hermesd processes with every inter-process data link routed through the
# seeded fault proxy — asymmetric WAN latency, one mid-stream RST of the
# leader link, a 2s bidirectional partition that heals on its own — plus
# a SIGKILL that only the heartbeat supervisor repairs. The run must
# commit everything and quiesce to digests byte-identical to the
# fault-free in-process twin, with the child processes built -race
# (HERMESD_BUILD_RACE=1) so data races in the recovery paths surface
# here. The supervisor/backpressure unit suite rides along. Skips under
# -short (spawns OS processes); the list guard fails loudly if a rename
# ever empties the match set (see docs/CLUSTER.md, "Network faults & the
# supervisor").
echo "==> cluster netchaos gate (fault proxy + supervisor, -race children)"
netchaos_run='TestClusterNetChaos|TestSupervisor|TestClusterBackpressureCounters|TestPlane|TestWANProfile'
netchaos_pkgs=". ./internal/harness ./internal/netchaos"
listed=$(go test -list "${netchaos_run}" ${netchaos_pkgs} | grep -c '^Test' || true)
if [[ "${listed}" -eq 0 ]]; then
    echo "cluster netchaos gate matched no tests: the suite was renamed or deleted" >&2
    exit 1
fi
HERMESD_BUILD_RACE=1 go test -race -count=1 -timeout 15m ${short_flag} \
    -run "${netchaos_run}" ${netchaos_pkgs}

# Smoke-run the routing benchmark (1 iteration) so it can't silently rot;
# scripts/bench.sh runs the full gated comparison against the baseline.
echo "==> go test -bench=BenchmarkPrescientRouting -benchtime=1x ./internal/core"
go test -run '^$' -bench=BenchmarkPrescientRouting -benchtime=1x ./internal/core

echo "==> CI gate passed"
