#!/usr/bin/env bash
# CI gate: everything a change must pass before merging.
#
# Usage:
#   scripts/ci.sh          # full gate (vet + race-enabled tests)
#   scripts/ci.sh -short   # quick local pre-push check
#
# The chaos equivalence suite (internal/chaos) runs as part of the normal
# test sweep; see docs/TESTING.md for reproducing a failing fault schedule
# from the seed in its failure message.
set -euo pipefail
cd "$(dirname "$0")/.."

short_flag=""
if [[ "${1:-}" == "-short" ]]; then
    short_flag="-short"
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ${short_flag} ./..."
go test -race ${short_flag} ./...

echo "==> CI gate passed"
