#!/usr/bin/env bash
# CI gate: everything a change must pass before merging.
#
# Usage:
#   scripts/ci.sh          # full gate (vet + race-enabled tests)
#   scripts/ci.sh -short   # quick local pre-push check
#
# The chaos equivalence suite (internal/chaos) runs as part of the normal
# test sweep; see docs/TESTING.md for reproducing a failing fault schedule
# from the seed in its failure message.
set -euo pipefail
cd "$(dirname "$0")/.."

short_flag=""
if [[ "${1:-}" == "-short" ]]; then
    short_flag="-short"
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ${short_flag} ./..."
go test -race ${short_flag} ./...

# Crash-recovery gate: reliable transport, node kill/restart, checkpoint+
# tail recovery, and the lossy+crash chaos schedules. The general sweep
# above already covers these when run full; this named step keeps the
# recovery claim pinned even under -short (see docs/RECOVERY.md).
echo "==> crash-recovery suite (-race)"
go test -race -count=1 \
    -run 'Reliable|Crash|Recover|Checkpoint|LossAndCrash|LossySchedule|TCPTransport' \
    ./internal/network ./internal/engine ./internal/chaos .

# Leader-failover gate: killing the total-order leader — alone and
# combined with the lossy + worker-crash schedule — must quiesce to node
# digests byte-identical to a fault-free run for every policy, with every
# transaction sequenced exactly once (see docs/RECOVERY.md, "Leader
# failover"). Pinned by name so it survives -short.
echo "==> leader-failover gate (-race)"
go test -race -count=1 \
    -run 'TestEquivalenceLeaderKill|TestLeaderKillSchedule|TestLeaderFailover|TestLeaderCrashValidation|TestGroup|TestFrontend' \
    ./internal/chaos ./internal/engine ./internal/sequencer .

# Telemetry-equivalence gate: tracing fully on vs fully off must quiesce
# to byte-identical node digests on every policy, including the lossy +
# mid-run-crash schedule — telemetry is an observer, never a participant
# (see docs/OBSERVABILITY.md). Pinned by name so it survives -short.
echo "==> telemetry-equivalence gate (-race)"
go test -race -count=1 -run 'TestTelemetryEquivalence' ./internal/chaos

# Smoke-run the routing benchmark (1 iteration) so it can't silently rot;
# scripts/bench.sh runs the full gated comparison against the baseline.
echo "==> go test -bench=BenchmarkPrescientRouting -benchtime=1x ./internal/core"
go test -run '^$' -bench=BenchmarkPrescientRouting -benchtime=1x ./internal/core

echo "==> CI gate passed"
