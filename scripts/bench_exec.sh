#!/usr/bin/env bash
# Lock-vs-queue execution benchmark gate (docs/PERF.md, "Queue-oriented
# execution").
#
# Drives the identical high-contention hotspot trace through a lock-mode
# and a queue-mode cluster (interleaved trials, median-throughput trial
# reported), requires byte-identical node digests, and writes
# BENCH_exec.json at the repo root: per-mode commit throughput, p95, and
# the Fig. 7 LockWait before/after, plus the gate verdict the PR
# requires (>= 1.5x commit speedup at n=4, >= 5x LockWait reduction —
# reported as null/unbounded because queue mode has no lock manager at
# all).
#
# GOGC is disabled for the measurement: the workload is a fixed-size
# backlog drain, and collector pauses on a small heap add more variance
# than the effect under test.
#
# Usage:
#   scripts/bench_exec.sh                 # defaults: 65536 txns, 5 trials
#   TRIALS=9 TXNS=131072 scripts/bench_exec.sh
set -euo pipefail
cd "$(dirname "$0")/.."

txns="${TXNS:-65536}"
trials="${TRIALS:-5}"
out=BENCH_exec.json

echo "==> go run ./cmd/hermes-bench -execbench (txns=$txns trials=$trials, GOGC=off)"
GOGC=off go run ./cmd/hermes-bench -execbench \
    -execbench-txns "$txns" -execbench-trials "$trials" \
    -report "$out"
echo "==> wrote $out"
