#!/usr/bin/env bash
# Routing-cost benchmark gate (docs/PERF.md).
#
# Runs the BenchmarkPrescientRouting grid (b ∈ {100, 1000}, n ∈ {4, 20})
# plus BenchmarkCommitRoute with -benchmem, merges the pre-optimization
# baseline from scripts/routing_baseline.txt, and writes BENCH_routing.json
# at the repo root: per-variant {baseline, current, speedup} plus the
# headline n=20/b=1000 ratios the PR gate requires (≥ 3× ns/op,
# ≥ 10× allocs/op).
#
# Usage:
#   scripts/bench.sh                # 2s per variant (default)
#   BENCHTIME=5s scripts/bench.sh   # longer, steadier numbers
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2s}"
out=BENCH_routing.json
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench 'BenchmarkPrescientRouting|BenchmarkCommitRoute' -benchtime=$benchtime -benchmem ./internal/core"
go test -run '^$' -bench 'BenchmarkPrescientRouting|BenchmarkCommitRoute' \
    -benchtime="$benchtime" -benchmem ./internal/core | tee "$raw"

awk -v benchtime="$benchtime" '
function strip(name) { sub(/-[0-9]+$/, "", name); return name }
# Both files share the go-bench line format:
#   Name-P  iters  N ns/op  N B/op  N allocs/op
BEGIN { src = "baseline" }
FNR == 1 && NR != 1 { src = "current" }   # first file is the baseline, second the fresh run
/^Benchmark/ {
    name = strip($1)
    ns[name, src] = $3; bytes[name, src] = $5; allocs[name, src] = $7
    if (src == "current" && !(name in seen)) { order[++n] = name; seen[name] = 1 }
    next
}
END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\n", name
        printf "      \"baseline\": {\"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d},\n", \
            ns[name, "baseline"], bytes[name, "baseline"], allocs[name, "baseline"]
        printf "      \"current\":  {\"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d},\n", \
            ns[name, "current"], bytes[name, "current"], allocs[name, "current"]
        sx = ns[name, "baseline"] / ns[name, "current"]
        bx = bytes[name, "baseline"] / bytes[name, "current"]
        ax = 0; if (allocs[name, "current"] > 0) ax = allocs[name, "baseline"] / allocs[name, "current"]
        printf "      \"speedup\":  {\"ns\": %.2f, \"bytes\": %.2f, \"allocs\": %.2f}\n", sx, bx, ax
        printf "    }%s\n", (i < n ? "," : "")
    }
    printf "  },\n"
    hl = "BenchmarkPrescientRouting/n=20/b=1000"
    nsx = ns[hl, "baseline"] / ns[hl, "current"]
    alx = 0; if (allocs[hl, "current"] > 0) alx = allocs[hl, "baseline"] / allocs[hl, "current"]
    printf "  \"gate\": {\n"
    printf "    \"variant\": \"n=20/b=1000\",\n"
    printf "    \"ns_speedup\": %.2f, \"ns_required\": 3.0,\n", nsx
    printf "    \"allocs_speedup\": %.2f, \"allocs_required\": 10.0,\n", alx
    verdict = "false"; if (nsx >= 3.0 && alx >= 10.0) verdict = "true"
    printf "    \"pass\": %s\n", verdict
    printf "  }\n"
    printf "}\n"
}' scripts/routing_baseline.txt "$raw" > "$out"

echo "==> wrote $out"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out" <<'EOF'
import json, sys
gate = json.load(open(sys.argv[1]))["gate"]
print(f"==> gate ({gate['variant']}): ns {gate['ns_speedup']}x (need {gate['ns_required']}x), "
      f"allocs {gate['allocs_speedup']}x (need {gate['allocs_required']}x) -> "
      f"{'PASS' if gate['pass'] else 'FAIL'}")
sys.exit(0 if gate["pass"] else 1)
EOF
else
    grep -q '"pass": true' "$out" && echo "==> gate PASS" || { echo "==> gate FAIL"; exit 1; }
fi
