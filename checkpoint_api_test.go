package hermes

import (
	"testing"
	"time"
)

func TestPublicCheckpointRecover(t *testing.T) {
	opts := Options{Nodes: 2, Rows: 100, Policy: PolicyHermes, BatchSize: 8, BatchInterval: 2 * time.Millisecond}
	db := openTest(t, opts)
	db.LoadUniform(16)
	for i := 0; i < 20; i++ {
		if err := db.ExecWait(NodeID(i%2), &OpProc{
			Reads:  []Key{MakeKey(0, uint64(i*3%100)), MakeKey(0, uint64(i*11%100))},
			Writes: []Key{MakeKey(0, uint64(i*3%100))},
			Value:  []byte{byte(i)},
		}); err != nil {
			t.Fatal(err)
		}
		db.Drain(5 * time.Second)
	}
	cp, err := db.Checkpoint(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Fingerprint()

	db2, err := Recover(opts, cp)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint %x != original %x", got, want)
	}
	// Recovered instance keeps serving transactions.
	if err := db2.ExecWait(0, &OpProc{Reads: []Key{MakeKey(0, 1)}, Writes: []Key{MakeKey(0, 1)}, Value: []byte("post")}); err != nil {
		t.Fatal(err)
	}
	db2.Drain(5 * time.Second)
	if v, _ := db2.Read(MakeKey(0, 1)); string(v) != "post" {
		t.Fatalf("post-recovery write = %q", v)
	}
}
