package hermes

import (
	"testing"
	"time"
)

// TestRecoverWithTailAllPolicies exercises the full §4.3 recovery story
// through the public API for every routing policy: run traffic, take a
// checkpoint (which truncates the command log), keep running so a
// non-empty tail accumulates past the checkpoint, then rebuild a fresh
// instance from checkpoint + tail and demand per-node digest equality
// with the uninterrupted original.
func TestRecoverWithTailAllPolicies(t *testing.T) {
	const rows = 96
	for _, pol := range []Policy{PolicyHermes, PolicyCalvin, PolicyGStore, PolicyLEAP, PolicyTPart} {
		t.Run(string(pol), func(t *testing.T) {
			opts := Options{
				Nodes:         3,
				Rows:          rows,
				Policy:        pol,
				BatchSize:     4,
				BatchInterval: 2 * time.Millisecond,
			}
			db := openTest(t, opts)
			db.LoadUniform(16)

			run := func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if err := db.ExecWait(0, &OpProc{
						Reads:  []Key{MakeKey(0, uint64(i*3%rows)), MakeKey(0, uint64(i*7%rows))},
						Writes: []Key{MakeKey(0, uint64(i*3%rows))},
						Value:  []byte{byte(pol[0]), byte(i)},
					}); err != nil {
						t.Fatal(err)
					}
				}
				if !db.Drain(10 * time.Second) {
					t.Fatal("drain failed")
				}
			}

			run(0, 24)
			cp, err := db.Checkpoint(10 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			// The post-checkpoint phase is the part recovery must
			// re-execute rather than restore.
			run(24, 48)

			want := db.NodeFingerprints()
			tail := db.Tail(cp.Seq)
			if len(tail) == 0 {
				t.Fatal("post-checkpoint tail is empty; the test would only cover snapshot restore")
			}
			db.Close()

			db2, err := RecoverWithTail(opts, cp, tail)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			got := db2.NodeFingerprints()
			if len(got) != len(want) {
				t.Fatalf("node count %d != %d", len(got), len(want))
			}
			for id, w := range want {
				if got[id] != w {
					t.Errorf("node %d diverged after recovery: %x != %x", id, got[id], w)
				}
			}

			// The recovered instance must keep serving transactions with
			// the total order resuming past the replayed input.
			if err := db2.ExecWait(0, &OpProc{
				Reads:  []Key{MakeKey(0, 1), MakeKey(0, rows - 1)},
				Writes: []Key{MakeKey(0, 1)},
				Value:  []byte("post-recovery"),
			}); err != nil {
				t.Fatal(err)
			}
			if !db2.Drain(10 * time.Second) {
				t.Fatal("post-recovery drain failed")
			}
			if v, ok := db2.Read(MakeKey(0, 1)); !ok || string(v) != "post-recovery" {
				t.Fatalf("post-recovery write = %q, %v", v, ok)
			}
		})
	}
}
