package hermes

import (
	"testing"

	"hermes/internal/chaos"
)

// TestDeterministicReplay is the regression gate for the system's core
// invariant: replaying the same seeded workload through the same policy
// must reproduce the identical cluster fingerprint and identical per-node
// digests, for every routing policy the paper evaluates. It drives the
// chaos harness's pinned-batch protocol (internal/chaos) so batch
// composition is part of the replayed input, not an accident of timing.
func TestDeterministicReplay(t *testing.T) {
	cases := []struct {
		policy   string
		workload chaos.Workload
		seed     int64
	}{
		{"hermes", chaos.WorkloadYCSB, 101},
		{"calvin", chaos.WorkloadYCSB, 102},
		{"gstore", chaos.WorkloadYCSB, 103},
		{"leap", chaos.WorkloadYCSB, 104},
		{"tpart", chaos.WorkloadYCSB, 105},
		{"hermes", chaos.WorkloadMultiTenant, 106},
		{"hermes", chaos.WorkloadTPCC, 107},
	}
	for _, tc := range cases {
		t.Run(tc.policy+"/"+string(tc.workload), func(t *testing.T) {
			t.Parallel()
			spec := chaos.Spec{
				Policy: tc.policy, Workload: tc.workload,
				Nodes: 3, Txns: 48, Batch: 8, Seed: tc.seed,
			}
			// Two fault-free replays of the identical input: any
			// fingerprint difference is nondeterminism in the system
			// itself, not in the environment.
			replays := []chaos.Schedule{
				{Name: "replay-a", Seed: 1},
				{Name: "replay-b", Seed: 2},
			}
			results, err := chaos.Equivalence(spec, replays)
			if err != nil {
				t.Fatal(err)
			}
			if results[0].Fingerprint != results[1].Fingerprint {
				t.Fatalf("replay fingerprints differ: %x vs %x",
					results[0].Fingerprint, results[1].Fingerprint)
			}
			if results[0].Committed == 0 {
				t.Fatal("replay committed nothing")
			}
		})
	}
}

// TestPoliciesCovered pins the harness policy list to the public Policy
// constants so a new policy cannot be added without entering the
// determinism gate.
func TestPoliciesCovered(t *testing.T) {
	want := map[Policy]bool{
		PolicyHermes: true, PolicyCalvin: true, PolicyGStore: true,
		PolicyLEAP: true, PolicyTPart: true,
	}
	if got := len(chaos.Policies()); got != len(want) {
		t.Fatalf("harness covers %d policies, public API has %d", got, len(want))
	}
}
