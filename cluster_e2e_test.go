package hermes_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hermes/internal/harness"
)

// Cluster e2e scale: 3 real OS processes over loopback TCP, a worker
// SIGKILLed and restarted mid-run, and the final per-node digests compared
// byte for byte against the in-process emulation of the same seed.
const (
	e2eWorkers    = 3
	e2eRows       = 4000
	e2eTxns       = 1200
	e2eBatch      = 25
	e2eWindow     = 50
	e2ePayload    = 64
	e2eTheta      = 0.8
	e2eKeysPerTxn = 3
	e2eSeed       = 42
	e2eKillWorker = 2
)

// TestClusterE2E boots a real multi-process cluster per policy × workload,
// drives the deterministic stream through it while killing and restarting
// a worker mid-run, and requires the surviving cluster's final state
// digests to be byte-identical to the single-process emulation's. This is
// the determinism claim crossing OS process boundaries: batch composition,
// routing, execution order, and recovery replay all have to agree exactly.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster e2e skipped in -short mode")
	}
	if _, err := harness.HermesdBinary(); err != nil {
		t.Fatalf("building hermesd: %v", err)
	}
	for _, tc := range []struct {
		policy   string
		workload string
	}{
		{"hermes", harness.WorkloadYCSB},
		{"hermes", harness.WorkloadHotspot},
		{"calvin", harness.WorkloadYCSB},
		{"calvin", harness.WorkloadHotspot},
	} {
		tc := tc
		t.Run(tc.policy+"/"+tc.workload, func(t *testing.T) {
			runClusterCase(t, tc.policy, tc.workload)
		})
	}
}

func runClusterCase(t *testing.T, policy, workload string) {
	dir := t.TempDir()
	saveArtifactsOnFailure(t, dir)

	c, err := harness.StartCluster(harness.ClusterConfig{
		Workers:   e2eWorkers,
		Policy:    policy,
		Rows:      e2eRows,
		Payload:   e2ePayload,
		BatchSize: e2eBatch,
		Dir:       dir,
	})
	if err != nil {
		t.Fatalf("starting cluster: %v", err)
	}
	defer c.Close()
	if err := c.Seed(); err != nil {
		t.Fatalf("seeding cluster: %v", err)
	}

	spec := harness.WorkloadSpec{
		Kind:       workload,
		Seed:       e2eSeed,
		Txns:       e2eTxns,
		Rows:       e2eRows,
		KeysPerTxn: e2eKeysPerTxn,
		Payload:    e2ePayload,
		Theta:      e2eTheta,
		Window:     e2eWindow,
	}
	if err := c.Run(spec); err != nil {
		t.Fatalf("starting run: %v", err)
	}

	// SIGKILL a worker once the run is measurably underway, then bring it
	// back: the restarted process re-seeds, bumps its incarnation, replays
	// its journal, and rejoins on the same ports while peers retransmit.
	killAt := int64(e2eTxns * 2 / 5)
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Status()
		if err != nil {
			t.Fatalf("polling run status: %v", err)
		}
		if st.Completed >= killAt || st.Done {
			if st.Done {
				t.Logf("run finished before the kill point (%d/%d); killing post-run", st.Completed, e2eTxns)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never reached the kill point: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.KillWorker(e2eKillWorker); err != nil {
		t.Fatalf("killing worker %d: %v", e2eKillWorker, err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := c.RestartWorker(e2eKillWorker); err != nil {
		t.Fatalf("restarting worker %d: %v", e2eKillWorker, err)
	}

	res, err := c.WaitRun(120 * time.Second)
	if err != nil {
		t.Fatalf("waiting for run: %v", err)
	}
	if res.Committed != e2eTxns {
		t.Fatalf("cluster committed %d of %d transactions", res.Committed, e2eTxns)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatalf("quiescing: %v", err)
	}

	digests, err := c.Digests()
	if err != nil {
		t.Fatalf("collecting digests: %v", err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("collecting stats: %v", err)
	}
	if inc := stats[e2eKillWorker].Incarnation; inc < 2 {
		t.Errorf("restarted worker %d reports incarnation %d, want >= 2", e2eKillWorker, inc)
	}
	if scrapes, err := c.Metrics(); err != nil {
		t.Errorf("scraping /metrics: %v", err)
	} else if got := harness.MetricSum(scrapes, "hermes_txn_committed_total"); got == 0 {
		// The committed counter's exact name is telemetry's business; sum a
		// few likely spellings before declaring the scrape empty.
		if harness.MetricSum(scrapes, "hermes_committed_total") == 0 &&
			harness.MetricSum(scrapes, "committed_total") == 0 &&
			len(scrapes[0]) == 0 {
			t.Errorf("/metrics scrape of worker 0 came back empty")
		}
	}

	twin, err := harness.RunTwin(harness.TwinConfig{
		Workers:   e2eWorkers,
		Policy:    policy,
		Rows:      e2eRows,
		Payload:   e2ePayload,
		BatchSize: e2eBatch,
	}, spec)
	if err != nil {
		t.Fatalf("running in-process twin: %v", err)
	}
	if twin.Result.Committed != e2eTxns {
		t.Fatalf("twin committed %d of %d transactions", twin.Result.Committed, e2eTxns)
	}
	if len(digests) != len(twin.Digests) {
		t.Fatalf("cluster produced %d digests, twin %d", len(digests), len(twin.Digests))
	}
	for i := range digests {
		if digests[i] != twin.Digests[i] {
			t.Errorf("node %d digest diverges from the in-process twin:\n  cluster: %+v\n  twin:    %+v",
				i, digests[i], twin.Digests[i])
		}
	}
	if !t.Failed() {
		t.Logf("%s/%s: %d txns across %d processes (1 killed+restarted), %.0f txn/s, digests match twin",
			policy, workload, res.Committed, e2eWorkers, res.QPS)
	}
}

// saveArtifactsOnFailure copies the per-process logs (and journals dir
// listing) into $CLUSTER_E2E_ARTIFACTS when the test fails, so CI can
// upload them.
func saveArtifactsOnFailure(t *testing.T, dir string) {
	t.Cleanup(func() {
		dest := os.Getenv("CLUSTER_E2E_ARTIFACTS")
		if !t.Failed() || dest == "" {
			return
		}
		sub := filepath.Join(dest, filepath.Base(t.Name()))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Logf("artifacts: %v", err)
			return
		}
		logs, _ := filepath.Glob(filepath.Join(dir, "*.log"))
		for _, src := range logs {
			if err := copyFile(src, filepath.Join(sub, filepath.Base(src))); err != nil {
				t.Logf("artifacts: %v", err)
			}
		}
		t.Logf("artifacts: %d process logs copied to %s", len(logs), sub)
	})
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return fmt.Errorf("copying %s: %w", src, err)
	}
	return out.Close()
}
