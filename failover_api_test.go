package hermes

import (
	"testing"
	"time"
)

// TestLeaderFailoverPublicAPI drives the fault-tolerant sequencing story
// end to end through the public surface: open with sequencer standbys,
// checkpoint, kill the total-order leader mid-traffic, keep executing
// while the standby promotes itself, restart the killed replica, and
// check the stats surface recorded exactly one failover with no lost or
// duplicated transactions.
func TestLeaderFailoverPublicAPI(t *testing.T) {
	const rows = 96
	opts := Options{
		Nodes:              3,
		Rows:               rows,
		BatchSize:          4,
		BatchInterval:      2 * time.Millisecond,
		Reliable:           true,
		SeqStandbys:        2,
		SeqHeartbeat:       5 * time.Millisecond,
		SeqFailoverTimeout: 100 * time.Millisecond,
	}
	db := openTest(t, opts)
	db.LoadUniform(8)

	inc := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			k := MakeKey(0, uint64(i%rows))
			if err := db.ExecWait(0, &OpProc{
				Reads: []Key{k}, Writes: []Key{k},
				Mutate: func(_ Key, cur []byte) []byte {
					out := make([]byte, 8)
					copy(out, cur)
					out[0]++
					return out
				},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	inc(0, 16)
	if _, err := db.Checkpoint(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := db.CrashLeader(); err != nil {
		t.Fatal(err)
	}
	// These submissions span the leaderless window: the front-end retries
	// them against the promoted standby.
	inc(16, 32)
	if err := db.RestartLeader(); err != nil {
		t.Fatal(err)
	}
	inc(32, 48)
	if !db.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}

	var sum int
	for i := 0; i < rows; i++ {
		if v, ok := db.Read(MakeKey(0, uint64(i))); ok && len(v) > 0 {
			sum += int(v[0])
		}
	}
	if sum != 48 {
		t.Errorf("increment sum = %d, want 48 (lost or duplicated submissions)", sum)
	}
	st := db.Stats()
	if st.Committed != 48 {
		t.Errorf("committed = %d, want 48", st.Committed)
	}
	if st.SeqFailovers != 1 || st.SeqEpoch != 1 {
		t.Errorf("failovers=%d epoch=%d, want 1/1", st.SeqFailovers, st.SeqEpoch)
	}
	if st.SeqHeartbeatMisses == 0 {
		t.Error("no heartbeat misses recorded across a leader kill")
	}
}
