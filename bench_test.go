// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs the corresponding experiment from
// internal/experiments at a downscaled configuration and reports the
// headline metric the paper's figure conveys (throughput ratios, averages,
// series end-points) via b.ReportMetric, plus the rendered series through
// b.Log at -v. cmd/hermes-bench runs the same experiments at larger scale.
package hermes

import (
	"testing"
	"time"

	"hermes/internal/experiments"
)

// benchScale keeps every figure bench to a few seconds per system run.
func benchScale() experiments.Scale {
	sc := experiments.Small()
	sc.Phase = 800 * time.Millisecond
	sc.Window = 200 * time.Millisecond
	sc.Clients = 48
	return sc
}

// runFigure executes one experiment per benchmark iteration and returns
// the last result.
func runFigure(b *testing.B, name string, sc experiments.Scale) *experiments.Result {
	b.Helper()
	run := experiments.Registry[name]
	if run == nil {
		b.Fatalf("unknown experiment %s", name)
	}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.Render())
	return res
}

// avgOf returns the mean Y of the series with the given label (0 if absent).
func avgOf(res *experiments.Result, label string) float64 {
	for _, s := range res.Series {
		if s.Label == label {
			return experiments.AvgY(s)
		}
	}
	return 0
}

func BenchmarkFigure1Traces(b *testing.B) {
	res := runFigure(b, "fig1", benchScale())
	b.ReportMetric(avgOf(res, "machine-0"), "avg-load")
}

func BenchmarkFigure2LookBack(b *testing.B) {
	res := runFigure(b, "fig2", benchScale())
	rangeP := avgOf(res, "Range Partition")
	if rangeP > 0 {
		b.ReportMetric(avgOf(res, "LEAP")/rangeP, "leap/range")
		b.ReportMetric(avgOf(res, "Clay")/rangeP, "clay/range")
	}
}

func BenchmarkFigure6aLookBack(b *testing.B) {
	res := runFigure(b, "fig6a", benchScale())
	calvin := avgOf(res, "Calvin")
	if calvin > 0 {
		b.ReportMetric(avgOf(res, "Hermes")/calvin, "hermes/calvin")
		b.ReportMetric(avgOf(res, "Schism 1")/calvin, "schism1/calvin")
	}
}

func BenchmarkFigure6bOnline(b *testing.B) {
	res := runFigure(b, "fig6b", benchScale())
	calvin := avgOf(res, "Calvin")
	if calvin > 0 {
		b.ReportMetric(avgOf(res, "Hermes")/calvin, "hermes/calvin")
		b.ReportMetric(avgOf(res, "T-Part")/calvin, "tpart/calvin")
		b.ReportMetric(avgOf(res, "LEAP")/calvin, "leap/calvin")
	}
}

func BenchmarkFigure7LatencyBreakdown(b *testing.B) {
	sc := benchScale()
	sc.Phase = 600 * time.Millisecond
	res := runFigure(b, "fig7", sc)
	// Paper's observation: Hermes cuts remote-data wait vs Calvin.
	var calvinRemote, hermesRemote float64
	for _, s := range res.Series {
		if len(s.Y) >= 4 {
			switch s.Label {
			case "Calvin":
				calvinRemote = s.Y[3]
			case "Hermes":
				hermesRemote = s.Y[3]
			}
		}
	}
	if calvinRemote > 0 {
		b.ReportMetric(hermesRemote/calvinRemote, "remote-wait-ratio")
	}
}

func BenchmarkFigure8Utilization(b *testing.B) {
	sc := benchScale()
	sc.Phase = 600 * time.Millisecond
	res := runFigure(b, "fig8", sc)
	b.ReportMetric(avgOf(res, "Hermes"), "hermes-cpu-%")
	b.ReportMetric(avgOf(res, "Calvin"), "calvin-cpu-%")
}

func BenchmarkFigure8bNetworkPerTxn(b *testing.B) {
	sc := benchScale()
	sc.Phase = 600 * time.Millisecond
	res := runFigure(b, "fig8b", sc)
	b.ReportMetric(avgOf(res, "Hermes"), "hermes-bytes/txn")
	b.ReportMetric(avgOf(res, "T-Part"), "tpart-bytes/txn")
}

func BenchmarkFigure9TxnLength(b *testing.B) {
	sc := benchScale()
	sc.Phase = 500 * time.Millisecond
	res := runFigure(b, "fig9", sc)
	// Improvement of Hermes over Calvin at the longest setting.
	for _, s := range res.Series {
		if s.Label == "Hermes" && len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], "hermes-improvement-%")
		}
	}
}

func BenchmarkFigure10BatchSize(b *testing.B) {
	sc := benchScale()
	sc.Phase = 500 * time.Millisecond
	res := runFigure(b, "fig10", sc)
	if len(res.Series) == 1 && len(res.Series[0].Y) > 0 {
		ys := res.Series[0].Y
		best, worst := ys[0], ys[0]
		for _, v := range ys {
			if v > best {
				best = v
			}
			if v < worst {
				worst = v
			}
		}
		if worst > 0 {
			b.ReportMetric(best/worst, "best/worst-batch")
		}
	}
}

func BenchmarkFigure11TPCC(b *testing.B) {
	sc := benchScale()
	sc.Phase = 500 * time.Millisecond
	res := runFigure(b, "fig11", sc)
	// Hermes vs Calvin at the 90% concentration point (last X).
	var calvin90, hermes90 float64
	for _, s := range res.Series {
		if len(s.Y) == 0 {
			continue
		}
		switch s.Label {
		case "Calvin":
			calvin90 = s.Y[len(s.Y)-1]
		case "Hermes":
			hermes90 = s.Y[len(s.Y)-1]
		}
	}
	if calvin90 > 0 {
		b.ReportMetric(hermes90/calvin90, "hermes/calvin@90%")
	}
}

func BenchmarkFigure12MultiTenant(b *testing.B) {
	res := runFigure(b, "fig12", benchScale())
	calvin := avgOf(res, "Calvin")
	if calvin > 0 {
		b.ReportMetric(avgOf(res, "Hermes")/calvin, "hermes/calvin")
	}
}

func BenchmarkFigure13InitialPartitioning(b *testing.B) {
	sc := benchScale()
	sc.Phase = 500 * time.Millisecond
	res := runFigure(b, "fig13", sc)
	// Robustness: Hermes's worst layout relative to its best.
	for _, s := range res.Series {
		if s.Label == "Hermes" && len(s.Y) > 0 {
			worst, best := s.Y[0], s.Y[0]
			for _, v := range s.Y {
				if v < worst {
					worst = v
				}
				if v > best {
					best = v
				}
			}
			if best > 0 {
				b.ReportMetric(worst/best, "hermes-worst/best-layout")
			}
		}
	}
}

func BenchmarkAblationAlgorithm1(b *testing.B) {
	sc := benchScale()
	sc.Phase = 600 * time.Millisecond
	res := runFigure(b, "ablation", sc)
	full := avgOf(res, "Hermes (full)")
	if full > 0 {
		b.ReportMetric(avgOf(res, "no-reorder")/full, "noreorder/full")
		b.ReportMetric(avgOf(res, "no-rebalance")/full, "norebalance/full")
		b.ReportMetric(avgOf(res, "no-fusion")/full, "nofusion/full")
	}
}

func BenchmarkAblationFusionCapacity(b *testing.B) {
	sc := benchScale()
	sc.Phase = 400 * time.Millisecond
	res := runFigure(b, "ablation-fusion", sc)
	b.ReportMetric(avgOf(res, "LRU"), "lru-avg-committed")
}

func BenchmarkAblationAlpha(b *testing.B) {
	sc := benchScale()
	sc.Phase = 400 * time.Millisecond
	runFigure(b, "ablation-alpha", sc)
}

func BenchmarkFigure14ScaleOut(b *testing.B) {
	res := runFigure(b, "fig14", benchScale())
	// The paper's point: Squall craters mid-migration, Hermes does not.
	trough := func(label string) float64 {
		for _, s := range res.Series {
			if s.Label == label && len(s.Y) > 1 {
				min := s.Y[1] // skip warm-up window
				for _, v := range s.Y[1:] {
					if v < min {
						min = v
					}
				}
				return min
			}
		}
		return 0
	}
	b.ReportMetric(trough("Squall"), "squall-trough")
	b.ReportMetric(trough("Hermes w/o cold (5%)"), "hermes-trough")
}
