package hermes

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

// TestOLLPSecondaryIndexLookup models the canonical OLLP case: record A
// holds a pointer (an index entry) to the record that must be updated.
// The access set depends on A's value, so reconnaissance reads A first.
func TestOLLPSecondaryIndexLookup(t *testing.T) {
	db := openTest(t, Options{Nodes: 2, Rows: 100, Policy: PolicyHermes})
	db.LoadUniform(16)
	idx := MakeKey(0, 1)
	target := MakeKey(0, 77)
	// Index entry: points at row 77.
	ptr := make([]byte, 16)
	binary.LittleEndian.PutUint64(ptr, 77)
	if err := db.ExecWait(0, &OpProc{Reads: []Key{idx}, Writes: []Key{idx}, Value: ptr}); err != nil {
		t.Fatal(err)
	}
	db.Drain(5 * time.Second)

	planner := func(read func(Key) []byte) (Procedure, func(ctx ExecCtx) bool, error) {
		row := binary.LittleEndian.Uint64(read(idx))
		tgt := MakeKey(0, row)
		proc := &OpProc{
			Reads:  []Key{idx, tgt},
			Writes: []Key{tgt},
			Value:  []byte("indexed-update"),
		}
		validate := func(ctx ExecCtx) bool {
			return binary.LittleEndian.Uint64(ctx.Read(idx)) == row
		}
		return proc, validate, nil
	}
	if err := db.ExecOLLP(0, planner, 3); err != nil {
		t.Fatal(err)
	}
	db.Drain(5 * time.Second)
	v, ok := db.Read(target)
	if !ok || string(v) != "indexed-update" {
		t.Fatalf("target = %q,%v", v, ok)
	}
}

// TestOLLPRetriesOnStaleIndex forces the prediction stale once: the first
// planned transaction validates against a moved index entry, aborts
// deterministically, and the retry succeeds against the new target.
func TestOLLPRetriesOnStaleIndex(t *testing.T) {
	db := openTest(t, Options{Nodes: 2, Rows: 100, Policy: PolicyHermes})
	db.LoadUniform(16)
	idx := MakeKey(0, 1)
	writePtr := func(row uint64) {
		ptr := make([]byte, 16)
		binary.LittleEndian.PutUint64(ptr, row)
		if err := db.ExecWait(0, &OpProc{Reads: []Key{idx}, Writes: []Key{idx}, Value: ptr}); err != nil {
			t.Fatal(err)
		}
		db.Drain(5 * time.Second)
	}
	writePtr(50)

	attempts := 0
	planner := func(read func(Key) []byte) (Procedure, func(ctx ExecCtx) bool, error) {
		attempts++
		row := binary.LittleEndian.Uint64(read(idx))
		if attempts == 1 {
			// Sabotage: move the index between reconnaissance and submit.
			writePtr(60)
		}
		tgt := MakeKey(0, row)
		proc := &OpProc{Reads: []Key{idx, tgt}, Writes: []Key{tgt}, Value: []byte("v2")}
		validate := func(ctx ExecCtx) bool {
			return binary.LittleEndian.Uint64(ctx.Read(idx)) == row
		}
		return proc, validate, nil
	}
	if err := db.ExecOLLP(0, planner, 5); err != nil {
		t.Fatal(err)
	}
	db.Drain(5 * time.Second)
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one stale, one success)", attempts)
	}
	// The stale attempt must not have written row 50.
	if v, _ := db.Read(MakeKey(0, 50)); string(v) == "v2" {
		t.Fatal("stale transaction's write leaked")
	}
	if v, _ := db.Read(MakeKey(0, 60)); string(v) != "v2" {
		t.Fatalf("retried transaction's write missing: %q", v)
	}
}

func TestOLLPExhaustsRetries(t *testing.T) {
	db := openTest(t, Options{Nodes: 2, Rows: 100, Policy: PolicyHermes})
	db.LoadUniform(16)
	planner := func(read func(Key) []byte) (Procedure, func(ctx ExecCtx) bool, error) {
		proc := &OpProc{Reads: []Key{MakeKey(0, 2)}, Writes: []Key{MakeKey(0, 2)}, Value: []byte("x")}
		return proc, func(ExecCtx) bool { return false }, nil // always stale
	}
	err := db.ExecOLLP(0, planner, 2)
	if !errors.Is(err, ErrOLLPRetriesExhausted) {
		t.Fatalf("err = %v, want retries exhausted", err)
	}
}

func TestOLLPPlannerError(t *testing.T) {
	db := openTest(t, Options{Nodes: 2, Rows: 100, Policy: PolicyHermes})
	wantErr := errors.New("no such index")
	planner := func(read func(Key) []byte) (Procedure, func(ctx ExecCtx) bool, error) {
		return nil, nil, wantErr
	}
	if err := db.ExecOLLP(0, planner, 3); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want planner error", err)
	}
}
