package hermes

import (
	"fmt"
	"testing"
	"time"
)

func openTest(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.BatchSize == 0 {
		opts.BatchSize = 8
	}
	if opts.BatchInterval == 0 {
		opts.BatchInterval = 2 * time.Millisecond
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
	if _, err := Open(Options{Nodes: 2}); err == nil {
		t.Fatal("missing Rows and Base accepted")
	}
	if _, err := Open(Options{Nodes: 2, Rows: 100, Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestAllPoliciesEndToEnd(t *testing.T) {
	for _, p := range []Policy{PolicyHermes, PolicyCalvin, PolicyGStore, PolicyLEAP, PolicyTPart} {
		t.Run(string(p), func(t *testing.T) {
			db := openTest(t, Options{Nodes: 3, Rows: 300, Policy: p})
			db.LoadUniform(16)
			// Distributed read-modify-write across partitions.
			k1, k2 := MakeKey(0, 10), MakeKey(0, 250)
			proc := &OpProc{
				Reads:  []Key{k1, k2},
				Writes: []Key{k1, k2},
				Mutate: func(_ Key, cur []byte) []byte {
					out := append([]byte(nil), cur...)
					out[0]++
					return out
				},
			}
			for i := 0; i < 10; i++ {
				if err := db.ExecWait(NodeID(i%3), proc); err != nil {
					t.Fatal(err)
				}
			}
			if !db.Drain(10 * time.Second) {
				t.Fatal("drain failed")
			}
			for _, k := range []Key{k1, k2} {
				v, ok := db.Read(k)
				if !ok || v[0] != 10 {
					t.Fatalf("%v: key %v = %v, want counter 10", p, k, v)
				}
			}
			st := db.Stats()
			if st.Committed != 10 {
				t.Fatalf("Committed = %d", st.Committed)
			}
			if st.AvgBreakdown.Total() <= 0 {
				t.Fatal("empty latency breakdown")
			}
		})
	}
}

func TestStatsPopulated(t *testing.T) {
	db := openTest(t, Options{Nodes: 2, Rows: 100, Policy: PolicyHermes, StatsWindow: 100 * time.Millisecond})
	db.LoadUniform(16)
	for i := 0; i < 20; i++ {
		if err := db.ExecWait(0, &OpProc{
			Reads:  []Key{MakeKey(0, uint64(i)), MakeKey(0, 80)},
			Writes: []Key{MakeKey(0, 80)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.Drain(5 * time.Second)
	st := db.Stats()
	if st.Committed != 20 || len(st.Throughput) == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.NetworkBytes == 0 {
		t.Fatal("no network bytes recorded for distributed transactions")
	}
	if st.P99 < st.P50 {
		t.Fatalf("P99 %v < P50 %v", st.P99, st.P50)
	}
}

func TestProvisionAndMigrateAPI(t *testing.T) {
	db := openTest(t, Options{Nodes: 2, StandbyNodes: 1, Rows: 200, Policy: PolicyHermes})
	db.LoadUniform(16)
	if err := db.Provision([]NodeID{2}, nil); err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for i := uint64(0); i < 50; i++ {
		keys = append(keys, MakeKey(0, i))
	}
	if err := db.Migrate(keys, 2, 20); err != nil {
		t.Fatal(err)
	}
	if !db.Drain(10 * time.Second) {
		t.Fatal("drain failed")
	}
	if got := db.Cluster().Node(2).Store().Len(); got != 50 {
		t.Fatalf("migrated records on new node = %d, want 50", got)
	}
	// Everything still readable and writable.
	if err := db.ExecWait(0, &OpProc{Reads: []Key{keys[0]}, Writes: []Key{keys[0]}, Value: []byte("after-scale-out")}); err != nil {
		t.Fatal(err)
	}
	db.Drain(5 * time.Second)
	if v, ok := db.Read(keys[0]); !ok || string(v) != "after-scale-out" {
		t.Fatalf("read after migration = %q,%v", v, ok)
	}
}

func TestDeterministicFingerprint(t *testing.T) {
	run := func() uint64 {
		db := openTest(t, Options{Nodes: 2, Rows: 100, Policy: PolicyHermes})
		db.LoadUniform(16)
		for i := 0; i < 30; i++ {
			if err := db.ExecWait(NodeID(i%2), &OpProc{
				Reads:  []Key{MakeKey(0, uint64(i*3%100)), MakeKey(0, uint64(i*7%100))},
				Writes: []Key{MakeKey(0, uint64(i*3%100))},
				Value:  []byte{byte(i)},
			}); err != nil {
				t.Fatal(err)
			}
		}
		db.Drain(10 * time.Second)
		return db.Fingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("fingerprints differ: %x vs %x", a, b)
	}
}

func ExampleOpen() {
	db, err := Open(Options{Nodes: 2, Rows: 1000, Policy: PolicyHermes, BatchSize: 4, BatchInterval: time.Millisecond})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	db.LoadUniform(16)
	err = db.ExecWait(0, &OpProc{
		Reads:  []Key{MakeKey(0, 1), MakeKey(0, 900)},
		Writes: []Key{MakeKey(0, 900)},
		Value:  []byte("fused"),
	})
	if err != nil {
		panic(err)
	}
	db.Drain(5 * time.Second)
	v, _ := db.Read(MakeKey(0, 900))
	fmt.Println(string(v))
	// Output: fused
}
