// Scale-out demo (a miniature Fig. 14): a 3-node cluster with a hot
// tenant activates a standby fourth node mid-run. The provisioning change
// flows through the total order, the prescient router immediately starts
// fusing hot records onto the new node, and a background cold migration
// moves the rest of the tenant — without the throughput crater a blocking
// migration causes.
package main

import (
	"fmt"
	"time"

	"hermes"
	"hermes/internal/workload"
)

const (
	activeNodes = 3
	clients     = 24
	window      = 500 * time.Millisecond
)

func main() {
	cfg := workload.DefaultMultiTenantConfig(activeNodes)
	cfg.RotationPeriod = 0
	cfg.HotNode = 0
	cfg.Concentration = 0.25
	cfg.RowsPerTenant = 1000
	cfg.Seed = 3
	gen := workload.NewMultiTenant(cfg)

	db, err := hermes.Open(hermes.Options{
		Nodes:        activeNodes,
		StandbyNodes: 1,
		Rows:         gen.Rows(),
		Base:         gen.Partitioner(),
		Policy:       hermes.PolicyHermes,
		NetLatency:   200 * time.Microsecond,
		StatsWindow:  window,
		BatchSize:    64,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	db.LoadUniform(64)

	driver := &workload.Driver{Gen: gen, Clients: clients}
	driver.Run(submitter{db}, time.Now())

	time.Sleep(1500 * time.Millisecond)
	fmt.Println("t=1.5s: activating node 3 (totally ordered provision txn)")
	if err := db.Provision([]hermes.NodeID{3}, nil); err != nil {
		panic(err)
	}

	// Cold-migrate the hot tenant's range to the new node in chunks; the
	// router skips fusion-tracked (hot) keys automatically.
	lo, hi := gen.TenantRange(0)
	var keys []hermes.Key
	for k := lo; k < hi; k++ {
		keys = append(keys, k)
	}
	fmt.Printf("migrating tenant 0 (%d records) to node 3 in background\n", len(keys))
	go db.Migrate(keys, 3, 200)

	time.Sleep(2500 * time.Millisecond)
	driver.Stop()
	db.Drain(10 * time.Second)

	st := db.Stats()
	fmt.Printf("\nper-window throughput: ")
	for _, v := range st.Throughput {
		fmt.Printf("%6d", v)
	}
	fmt.Println()
	n3 := db.Cluster().Node(3).Store().Len()
	fmt.Printf("records now on node 3: %d; total migrations: %d\n", n3, st.Migrations)
	fmt.Println("throughput should rise after t=1.5s instead of dipping:")
	fmt.Println("hot data moves via data fusion, cold chunks skip hot keys.")
}

type submitter struct{ db *hermes.DB }

func (s submitter) Submit(via hermes.NodeID, proc hermes.Procedure) (<-chan struct{}, error) {
	return s.db.Exec(via, proc)
}
