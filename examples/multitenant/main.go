// Multi-tenant rotating hot spot (a miniature Fig. 12): 90% of requests
// concentrate on one node's tenants, and the hot node moves every two
// seconds. Hermes re-partitions on the fly with each batch; Calvin's
// throughput collapses to whatever the hot node can serve.
package main

import (
	"fmt"
	"time"

	"hermes"
	"hermes/internal/workload"
)

const (
	nodes   = 4
	clients = 32
	runFor  = 4 * time.Second
	window  = 500 * time.Millisecond
)

func main() {
	for _, policy := range []hermes.Policy{hermes.PolicyCalvin, hermes.PolicyLEAP, hermes.PolicyHermes} {
		tput := run(policy)
		fmt.Printf("%-8s per-window throughput: ", policy)
		for _, v := range tput {
			fmt.Printf("%6d", v)
		}
		fmt.Println()
	}
	fmt.Printf("\nhot node rotates every 2s; watch Hermes recover within a window\n")
	fmt.Println("while the static systems stay bottlenecked on the hot node.")
}

func run(policy hermes.Policy) []int64 {
	cfg := workload.DefaultMultiTenantConfig(nodes)
	cfg.RotationPeriod = 2 * time.Second
	cfg.RowsPerTenant = 1000
	cfg.Seed = 11
	gen := workload.NewMultiTenant(cfg)

	db, err := hermes.Open(hermes.Options{
		Nodes:       nodes,
		Rows:        gen.Rows(),
		Base:        gen.Partitioner(),
		Policy:      policy,
		NetLatency:  200 * time.Microsecond,
		StatsWindow: window,
		BatchSize:   64,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	db.LoadUniform(64)

	driver := &workload.Driver{Gen: gen, Clients: clients}
	driver.Run(submitter{db}, time.Now())
	time.Sleep(runFor)
	driver.Stop()
	db.Drain(10 * time.Second)
	return db.Stats().Throughput
}

type submitter struct{ db *hermes.DB }

func (s submitter) Submit(via hermes.NodeID, proc hermes.Procedure) (<-chan struct{}, error) {
	return s.db.Exec(via, proc)
}
