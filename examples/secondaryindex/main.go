// Secondary-index lookups with OLLP: deterministic databases need a
// transaction's read/write-sets *before* it runs, but an index lookup
// only learns its target row from data. Calvin's answer — adopted by
// Hermes (§2.1) — is Optimistic Lock Location Prediction: a cheap
// reconnaissance read predicts the access set, the real transaction
// revalidates the prediction deterministically, and the client retries
// when the index moved underneath it. This example maintains a tiny
// username → user-row index and updates users "by name" while another
// goroutine keeps rehoming one of them.
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"hermes"
)

const (
	users    = 100
	idxBase  = 10_000 // index entries live at rows 10000+hash(name)
	userBase = 0
)

func idxKey(name int) hermes.Key    { return hermes.MakeKey(0, idxBase+uint64(name)) }
func userKey(row uint64) hermes.Key { return hermes.MakeKey(0, userBase+row) }

func main() {
	db, err := hermes.Open(hermes.Options{Nodes: 3, Rows: 20_000, Policy: hermes.PolicyHermes})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	db.LoadUniform(16)

	// Build the index: name i -> user row i.
	for i := 0; i < users; i++ {
		ptr := make([]byte, 16)
		binary.LittleEndian.PutUint64(ptr, uint64(i))
		if err := db.ExecWait(0, &hermes.OpProc{
			Reads: []hermes.Key{idxKey(i)}, Writes: []hermes.Key{idxKey(i)}, Value: ptr,
		}); err != nil {
			panic(err)
		}
	}
	db.Drain(5 * time.Second)

	// A mover keeps relocating user 7 to fresh rows, invalidating
	// in-flight reconnaissance.
	var moves, retriesObserved atomic.Int64
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			newRow := uint64(200 + rng.Intn(5000))
			ptr := make([]byte, 16)
			binary.LittleEndian.PutUint64(ptr, newRow)
			db.ExecWait(1, &hermes.OpProc{
				Reads: []hermes.Key{idxKey(7)}, Writes: []hermes.Key{idxKey(7)}, Value: ptr,
			})
			moves.Add(1)
			// Pace the mover above the OLLP round-trip time; a mover
			// faster than reconnaissance+execution livelocks the hot
			// name — the known OLLP hazard (§2.1).
			time.Sleep(8 * time.Millisecond)
		}
	}()

	// Clients update users by name through OLLP.
	updates := 0
	for i := 0; i < 300; i++ {
		name := i % users
		attempt := 0
		planner := func(read func(hermes.Key) []byte) (hermes.Procedure, func(hermes.ExecCtx) bool, error) {
			attempt++
			if attempt > 1 {
				retriesObserved.Add(1)
			}
			row := binary.LittleEndian.Uint64(read(idxKey(name)))
			target := userKey(row)
			proc := &hermes.OpProc{
				Reads:  []hermes.Key{idxKey(name), target},
				Writes: []hermes.Key{target},
				Mutate: func(_ hermes.Key, cur []byte) []byte {
					out := make([]byte, 16)
					copy(out, cur)
					binary.LittleEndian.PutUint64(out, binary.LittleEndian.Uint64(out)+1)
					return out
				},
			}
			validate := func(ctx hermes.ExecCtx) bool {
				return binary.LittleEndian.Uint64(ctx.Read(idxKey(name))) == row
			}
			return proc, validate, nil
		}
		if err := db.ExecOLLP(hermes.NodeID(i%3), planner, 10); err != nil {
			fmt.Printf("update for name %d gave up: %v (attempts=%d)\n", name, err, attempt)
			continue
		}
		updates++
	}
	close(stop)
	db.Drain(10 * time.Second)

	fmt.Printf("applied %d by-name updates while the index moved %d times\n", updates, moves.Load())
	fmt.Printf("OLLP reconnaissance retries observed: %d\n", retriesObserved.Load())
	st := db.Stats()
	fmt.Printf("committed=%d aborted=%d (aborts = deterministic stale-prediction rollbacks)\n",
		st.Committed, st.Aborted)
}
