// Quickstart: open a 4-node Hermes cluster, load a table, run distributed
// read-modify-write transactions, and watch data fusion pull co-accessed
// records together.
package main

import (
	"fmt"
	"time"

	"hermes"
)

func main() {
	db, err := hermes.Open(hermes.Options{
		Nodes:  4,
		Rows:   10_000,
		Policy: hermes.PolicyHermes,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.LoadUniform(64)
	fmt.Println("loaded 10,000 records across 4 nodes (uniform range partitioning)")

	// Two records homed on different nodes: rows 100 (node 0) and 9,900
	// (node 3). The first transaction is distributed; Hermes migrates the
	// written record to the master on the fly.
	a, b := hermes.MakeKey(0, 100), hermes.MakeKey(0, 9_900)
	pl := db.Cluster().Node(0).Policy().Placement()
	fmt.Printf("before: owner(a)=%d owner(b)=%d\n", pl.Owner(a), pl.Owner(b))

	inc := &hermes.OpProc{
		Reads:  []hermes.Key{a, b},
		Writes: []hermes.Key{a, b},
		Mutate: func(_ hermes.Key, cur []byte) []byte {
			out := append([]byte(nil), cur...)
			out[0]++
			return out
		},
	}
	for i := 0; i < 5; i++ {
		if err := db.ExecWait(0, inc); err != nil {
			panic(err)
		}
	}
	db.Drain(5 * time.Second)

	fmt.Printf("after:  owner(a)=%d owner(b)=%d  (fused onto one master)\n", pl.Owner(a), pl.Owner(b))
	va, _ := db.Read(a)
	vb, _ := db.Read(b)
	fmt.Printf("counters: a=%d b=%d (want 5, 5)\n", va[0], vb[0])

	st := db.Stats()
	fmt.Printf("committed=%d migrations=%d remote-reads=%d net=%dB p50=%v\n",
		st.Committed, st.Migrations, st.RemoteReads, st.NetworkBytes, st.P50)
}
