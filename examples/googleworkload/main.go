// Google-workload comparison: runs the paper's complex trace-driven YCSB
// workload (§5.2.2) against Hermes and Calvin on identical emulated
// clusters and prints throughput over time — a miniature Fig. 6.
package main

import (
	"fmt"
	"time"

	"hermes"
	"hermes/internal/trace"
	"hermes/internal/workload"
)

const (
	nodes   = 4
	rows    = 20_000
	clients = 32
	runFor  = 3 * time.Second
	window  = 500 * time.Millisecond
)

func main() {
	tr := trace.Generate(trace.DefaultConfig(nodes, int(runFor/window)+2, 1))
	for _, policy := range []hermes.Policy{hermes.PolicyCalvin, hermes.PolicyHermes} {
		tput := run(policy, tr)
		fmt.Printf("%-8s throughput per %v window: ", policy, window)
		for _, v := range tput {
			fmt.Printf("%6d", v)
		}
		fmt.Println()
	}
	fmt.Println("\nHermes should sustain visibly higher and more even throughput:")
	fmt.Println("prescient routing fuses the global hot records near their readers")
	fmt.Println("and balances per-batch load, where Calvin pays a remote read on")
	fmt.Println("every distributed transaction.")
}

func run(policy hermes.Policy, tr *trace.Cluster) []int64 {
	db, err := hermes.Open(hermes.Options{
		Nodes:       nodes,
		Rows:        rows,
		Policy:      policy,
		NetLatency:  200 * time.Microsecond,
		StatsWindow: window,
		BatchSize:   64,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	db.LoadUniform(64)

	gen := workload.NewGoogle(workload.GoogleConfig{
		Rows: rows, Nodes: nodes, Trace: tr,
		WindowDur: window, DistributedRatio: 0.5, ReadWriteRatio: 0.5,
		Theta: 0.9, SweepPeriod: runFor, Payload: 64, Seed: 42,
	})
	driver := &workload.Driver{Gen: gen, Clients: clients}
	driver.Run(submitter{db}, time.Now())
	time.Sleep(runFor)
	driver.Stop()
	db.Drain(10 * time.Second)
	return db.Stats().Throughput
}

type submitter struct{ db *hermes.DB }

func (s submitter) Submit(via hermes.NodeID, proc hermes.Procedure) (<-chan struct{}, error) {
	return s.db.Exec(via, proc)
}
