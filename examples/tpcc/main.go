// TPC-C hot-spot demo (a miniature Fig. 11): run the New-Order/Payment
// mix with 90% of requests concentrated on the first node's warehouses,
// and compare how Calvin and Hermes cope. Hermes migrates hot warehouse
// records off the overloaded node via data fusion.
package main

import (
	"fmt"
	"time"

	"hermes"
	"hermes/internal/workload"
)

const (
	nodes             = 4
	warehousesPerNode = 4
	clients           = 32
	runFor            = 3 * time.Second
)

func main() {
	for _, conc := range []float64{0, 0.9} {
		fmt.Printf("hot-spot concentration %.0f%%:\n", conc*100)
		for _, policy := range []hermes.Policy{hermes.PolicyCalvin, hermes.PolicyHermes} {
			committed, aborted := run(policy, conc)
			fmt.Printf("  %-8s committed=%6d aborted=%d\n", policy, committed, aborted)
		}
	}
	fmt.Println("\nAt 0% both systems are close (TPC-C is already well partitioned")
	fmt.Println("by warehouse); at 90% Hermes balances the hot warehouses across")
	fmt.Println("nodes while Calvin stays pinned to the static layout.")
}

func run(policy hermes.Policy, conc float64) (int64, int64) {
	cfg := workload.DefaultTPCCConfig(nodes, warehousesPerNode)
	cfg.HotSpotProb = conc
	cfg.Seed = 7
	gen := workload.NewTPCC(cfg)

	db, err := hermes.Open(hermes.Options{
		Nodes:          nodes,
		Rows:           uint64(nodes*warehousesPerNode) * 2048,
		Base:           gen.Partitioner(),
		Policy:         policy,
		NetLatency:     200 * time.Microsecond,
		BatchSize:      64,
		FusionCapacity: 4096,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	gen.ForEachRecord(func(k hermes.Key, v []byte) { db.Load(k, v) })

	driver := &workload.Driver{Gen: gen, Clients: clients}
	driver.Run(submitter{db}, time.Now())
	time.Sleep(runFor)
	driver.Stop()
	db.Drain(10 * time.Second)
	st := db.Stats()
	return st.Committed, st.Aborted
}

type submitter struct{ db *hermes.DB }

func (s submitter) Submit(via hermes.NodeID, proc hermes.Procedure) (<-chan struct{}, error) {
	return s.db.Exec(via, proc)
}
