// Command hermesd runs an interactive single-process Hermes cluster: a
// small REPL over the public API for poking at the system — load records,
// run transactions, trigger scale-out, and watch placement move.
//
// Usage:
//
//	hermesd -nodes 4 -rows 10000 -policy hermes
//	hermesd -nodes 4 -http :8080        # live /metrics, /trace, /debug/pprof
//
// Commands:
//
//	get <row>                read a record
//	set <row> <value>        transactional write
//	inc <row> [<row>...]     transactional multi-row increment
//	owner <row>              current owner and home of a row
//	addnode                  activate a standby node (scale-out)
//	migrate <lo> <hi> <node> cold-migrate rows [lo,hi) to a node
//	checkpoint               quiesce and snapshot (enables crash commands)
//	killleader               crash the sequencer leader (standby promotes)
//	restartleader            restart the killed replica as a standby
//	stats                    throughput/latency/network counters
//	quit
//
// With -node N it instead runs as one worker process of a multi-process
// cluster over TCP, spawned and driven by internal/harness (see
// docs/CLUSTER.md).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hermes"
	"hermes/internal/telemetry"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "active nodes")
		standby = flag.Int("standby", 2, "standby nodes for scale-out")
		rows    = flag.Uint64("rows", 10000, "table size")
		policy  = flag.String("policy", "hermes", "routing policy (hermes|calvin|g-store|leap|t-part)")
		exec    = flag.String("exec", "", "execution backend: lock (conservative lock manager, default) or queue (per-key operation queues)")
		reli    = flag.Bool("reliable", false, "enable the reliable-delivery layer (acks, retransmission, dedup)")
		seqStby = flag.Int("seq-standbys", 0, "standby sequencer replicas (enables killleader; implies -reliable)")
		addr    = flag.String("http", "", "serve /metrics, /trace and /debug/pprof on this address (implies telemetry)")

		// Cluster node mode (spawned by internal/harness; see runNode).
		node      = flag.Int("node", -1, "cluster worker id; >= 0 switches to node mode")
		workers   = flag.Int("workers", 0, "node mode: total worker count")
		peers     = flag.String("peers", "", "node mode: id=addr,... transport address map incl. the leader")
		seqHost   = flag.Bool("seq-host", false, "node mode: host the standalone sequencer leader (fd 5)")
		fusionCap = flag.Int("fusioncap", 0, "node mode: fusion table capacity")
		alpha     = flag.Float64("alpha", 0, "node mode: load-imbalance tolerance")
		batch     = flag.Int("batch", 0, "node mode: sequencer batch size")
		dir       = flag.String("dir", "", "node mode: journal and seed-spec directory")
		fsync     = flag.String("fsync", "", "node mode: journal fsync policy: none (default), batch (group commit) or always")
		ckptEvery = flag.Duration("checkpoint-every", 0, "node mode: periodic durable checkpoint interval (0 disables)")
		recov     = flag.Bool("recover", false, "node mode: recovering restart (restore checkpoint, re-seed, replay the journal)")
		traceRing = flag.Int("trace-ring", 0, "node mode: per-node telemetry ring size in events (0 = default)")
		traceOff  = flag.Bool("trace-off", false, "node mode: disable lifecycle tracing (metrics stay on)")
		ovDelay   = flag.Int64("overload-delay", 0, "node mode: backpressure delay watermark on queue depth (<= 0 disables)")
		ovShed    = flag.Int64("overload-shed", 0, "node mode: backpressure shed watermark on queue depth (<= 0 disables)")

		statsAddr = flag.String("stats", "", "fetch a cluster node's /stats from this control-plane address, pretty-print it, and exit")
	)
	flag.Parse()
	if *statsAddr != "" {
		runStats(*statsAddr)
		return
	}
	if *node >= 0 {
		runNode(nodeFlags{
			node: *node, workers: *workers, peers: *peers, policy: *policy,
			rows: *rows, fusionCap: *fusionCap, alpha: *alpha, batch: *batch,
			dir: *dir, seqHost: *seqHost, recover: *recov, exec: *exec,
			fsync: *fsync, ckptEvery: *ckptEvery,
			traceRing: *traceRing, traceOff: *traceOff,
			ovDelay: *ovDelay, ovShed: *ovShed,
		})
		return
	}

	db, err := hermes.Open(hermes.Options{
		Nodes:        *nodes,
		StandbyNodes: *standby,
		Rows:         *rows,
		Policy:       hermes.Policy(*policy),
		Reliable:     *reli || *seqStby > 0,
		SeqStandbys:  *seqStby,
		Telemetry:    *addr != "",
		ExecMode:     *exec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Idempotent shutdown shared by "quit", EOF and signals: the REPL can
	// be interrupted at any point without double-closing the database.
	var closeOnce sync.Once
	shutdown := func() { closeOnce.Do(func() { db.Close() }) }
	defer shutdown()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "\nhermesd: interrupt — closing (signal again to force exit)")
		go func() {
			shutdown()
			os.Exit(0)
		}()
		<-sigs
		os.Exit(130)
	}()
	db.LoadUniform(64)
	fmt.Printf("hermesd: %d nodes (+%d standby), %d rows, policy=%s\n", *nodes, *standby, *rows, *policy)
	if *addr != "" {
		go func() {
			if err := http.ListenAndServe(*addr, db.Telemetry().Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "http:", err)
			}
		}()
		fmt.Printf("serving http://%s/metrics, /trace, /debug/pprof/\n", *addr)
	}

	nextStandby := *nodes
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "get":
			if row, ok := parseRow(fields, 1); ok {
				v, found := db.Read(hermes.MakeKey(0, row))
				fmt.Printf("%q (present=%v)\n", v, found)
			}
		case "set":
			if row, ok := parseRow(fields, 1); ok && len(fields) > 2 {
				k := hermes.MakeKey(0, row)
				err := db.ExecWait(0, &hermes.OpProc{
					Reads: []hermes.Key{k}, Writes: []hermes.Key{k},
					Value: []byte(fields[2]),
				})
				report(err)
			}
		case "inc":
			var keys []hermes.Key
			for _, f := range fields[1:] {
				if row, err := strconv.ParseUint(f, 10, 64); err == nil {
					keys = append(keys, hermes.MakeKey(0, row))
				}
			}
			if len(keys) > 0 {
				err := db.ExecWait(0, &hermes.OpProc{
					Reads: keys, Writes: keys,
					Mutate: func(_ hermes.Key, cur []byte) []byte {
						out := make([]byte, 8)
						copy(out, cur)
						out[0]++
						return out
					},
				})
				report(err)
			}
		case "owner":
			if row, ok := parseRow(fields, 1); ok {
				k := hermes.MakeKey(0, row)
				pl := db.Cluster().Node(0).Policy().Placement()
				fmt.Printf("owner=%d home=%d\n", pl.Owner(k), pl.Home(k))
			}
		case "addnode":
			if nextStandby >= *nodes+*standby {
				fmt.Println("no standby nodes left")
				break
			}
			err := db.Provision([]hermes.NodeID{hermes.NodeID(nextStandby)}, nil)
			report(err)
			if err == nil {
				fmt.Printf("node %d active\n", nextStandby)
				nextStandby++
			}
		case "migrate":
			if len(fields) == 4 {
				lo, _ := strconv.ParseUint(fields[1], 10, 64)
				hi, _ := strconv.ParseUint(fields[2], 10, 64)
				to, _ := strconv.Atoi(fields[3])
				var keys []hermes.Key
				for r := lo; r < hi; r++ {
					keys = append(keys, hermes.MakeKey(0, r))
				}
				report(db.Migrate(keys, hermes.NodeID(to), 500))
			}
		case "checkpoint":
			if _, err := db.Checkpoint(30 * time.Second); err != nil {
				report(err)
			} else {
				fmt.Println("ok")
			}
		case "killleader":
			report(db.CrashLeader())
		case "restartleader":
			report(db.RestartLeader())
		case "stats":
			db.Drain(2 * time.Second)
			st := db.Stats()
			fmt.Printf("committed=%d aborted=%d migrations=%d (%d bytes, %d in flight) remote-reads=%d\n",
				st.Committed, st.Aborted, st.Migrations, st.MigrationBytes, st.MigrationsInFlight, st.RemoteReads)
			fmt.Printf("net: %d msgs, %d bytes; latency p50=%v p99=%v\n",
				st.NetworkMsgs, st.NetworkBytes, st.P50, st.P99)
			fmt.Printf("routing: %d batches, %v/batch, %v/txn\n",
				st.RoutingBatches, st.RoutingPerBatch, st.RoutingPerTxn)
			fmt.Printf("reliability: %d retransmits, %d dups dropped; crashes=%d recoveries=%d downtime=%v\n",
				st.Retransmits, st.DupsDropped, st.Crashes, st.Recoveries, st.Downtime)
			fmt.Printf("sequencer: leader=%d epoch=%d failovers=%d heartbeat-misses=%d\n",
				st.SeqLeader, st.SeqEpoch, st.SeqFailovers, st.SeqHeartbeatMisses)
			if phases := db.Telemetry().Phases().SummaryMap(); len(phases) > 0 {
				fmt.Println("phase latency (histogram-backed, ms):")
				for c := telemetry.Component(0); c < telemetry.NumComponents; c++ {
					if ps, ok := phases[c.String()]; ok {
						fmt.Printf("  %-12s n=%-7d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
							c, ps.Count, ps.MeanMs, ps.P50Ms, ps.P95Ms, ps.P99Ms, ps.MaxMs)
					}
				}
			}
		default:
			fmt.Println("commands: get set inc owner addnode migrate checkpoint killleader restartleader stats quit")
		}
		fmt.Print("> ")
	}
}

func parseRow(fields []string, idx int) (uint64, bool) {
	if len(fields) <= idx {
		fmt.Println("missing row argument")
		return 0, false
	}
	row, err := strconv.ParseUint(fields[idx], 10, 64)
	if err != nil {
		fmt.Println("bad row:", err)
		return 0, false
	}
	return row, true
}

func report(err error) {
	if err != nil {
		fmt.Println("error:", err)
	} else {
		fmt.Println("ok")
	}
}
