package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hermes/internal/harness"
)

// runStats is hermesd's one-shot stats mode: fetch a running cluster
// node's /stats snapshot from its control-plane address and pretty-print
// every counter — the durability counters (fsyncs, group-commit batches,
// batched acks, torn/corrupt frames) included, not just the scraped
// /metrics text.
//
// A node that is mid-restart (the supervisor is bringing it back, or the
// orchestrator just respawned it) refuses connections for a moment even
// though its port stays bound; retry briefly with capped backoff instead
// of failing on the first refusal.
func runStats(addr string) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &http.Client{Timeout: 5 * time.Second}
	url := strings.TrimSuffix(addr, "/") + "/stats"
	var resp *http.Response
	var err error
	backoff := 50 * time.Millisecond
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err = client.Get(url)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fatalf("hermesd: -stats: node at %s still unreachable after 3s of retries (mid-restart, or wrong control address?): %v", addr, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("hermesd: -stats: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("hermesd: -stats: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var st harness.ProcStats
	if err := json.Unmarshal(body, &st); err != nil {
		fatalf("hermesd: -stats: decoding /stats: %v", err)
	}
	fmt.Print(st.Format())
}
