package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hermes/internal/harness"
)

// runStats is hermesd's one-shot stats mode: fetch a running cluster
// node's /stats snapshot from its control-plane address and pretty-print
// every counter — the durability counters (fsyncs, group-commit batches,
// batched acks, torn/corrupt frames) included, not just the scraped
// /metrics text.
func runStats(addr string) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(strings.TrimSuffix(addr, "/") + "/stats")
	if err != nil {
		fatalf("hermesd: -stats: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("hermesd: -stats: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("hermesd: -stats: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var st harness.ProcStats
	if err := json.Unmarshal(body, &st); err != nil {
		fatalf("hermesd: -stats: decoding /stats: %v", err)
	}
	fmt.Print(st.Format())
}
