package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hermes/internal/harness"
	"hermes/internal/tx"
)

// nodeFlags carries the cluster-node-mode command line (see runNode).
type nodeFlags struct {
	node      int
	workers   int
	peers     string
	policy    string
	rows      uint64
	fusionCap int
	alpha     float64
	batch     int
	dir       string
	seqHost   bool
	recover   bool
	exec      string
	fsync     string
	ckptEvery time.Duration
	traceRing int
	traceOff  bool
	ovDelay   int64
	ovShed    int64
}

// runNode is hermesd's cluster-process mode: spawned by the harness
// orchestrator with its data listener on fd 3, its control listener on
// fd 4, and — on the leader host — the sequencer leader's listener on
// fd 5. It runs one engine worker (plus the optional standalone leader)
// and serves the control plane until /shutdown or SIGTERM, either of
// which drains in-flight work before exiting.
func runNode(nf nodeFlags) {
	addrs, err := parsePeers(nf.peers)
	if err != nil {
		fatalf("hermesd: %v", err)
	}
	dataLn, err := inheritListener(3, "data")
	if err != nil {
		fatalf("hermesd: %v", err)
	}
	ctrlLn, err := inheritListener(4, "control")
	if err != nil {
		fatalf("hermesd: %v", err)
	}
	var leaderLn net.Listener
	if nf.seqHost {
		if leaderLn, err = inheritListener(5, "leader"); err != nil {
			fatalf("hermesd: %v", err)
		}
	}
	s, err := harness.NewNodeServer(harness.NodeConfig{
		Self:            tx.NodeID(nf.node),
		Workers:         nf.workers,
		Addrs:           addrs,
		DataLn:          dataLn,
		ControlLn:       ctrlLn,
		LeaderLn:        leaderLn,
		Policy:          nf.policy,
		Rows:            nf.rows,
		FusionCap:       nf.fusionCap,
		Alpha:           nf.alpha,
		BatchSize:       nf.batch,
		ExecMode:        nf.exec,
		Dir:             nf.dir,
		Fsync:           nf.fsync,
		CheckpointEvery: nf.ckptEvery,
		Recover:         nf.recover,
		TraceRing:       nf.traceRing,
		TraceOff:        nf.traceOff,
		OverloadDelay:   nf.ovDelay,
		OverloadShed:    nf.ovShed,
	})
	if err != nil {
		fatalf("hermesd: node %d: %v", nf.node, err)
	}
	// First SIGINT/SIGTERM drains and shuts down gracefully (Close is
	// idempotent, so a racing /shutdown is harmless); a second signal while
	// the drain is still running forces an immediate exit.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "hermesd: node %d: %v — draining (signal again to force exit)\n", nf.node, sig)
		go s.Close()
		sig = <-sigs
		fmt.Fprintf(os.Stderr, "hermesd: node %d: %v — forcing exit\n", nf.node, sig)
		os.Exit(130)
	}()
	fmt.Printf("hermesd: node %d of %d up (policy=%s seq-host=%v recover=%v)\n",
		nf.node, nf.workers, nf.policy, nf.seqHost, nf.recover)
	if err := s.Serve(); err != nil {
		fatalf("hermesd: node %d: control plane: %v", nf.node, err)
	}
}

// parsePeers parses "0=127.0.0.1:4001,1=...,-64=..." into the transport
// address map (negative ids name the sequencer leader).
func parsePeers(s string) (map[tx.NodeID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-peers is required in node mode")
	}
	out := make(map[tx.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -peers entry %q (want id=addr)", part)
		}
		n, err := strconv.ParseInt(id, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad -peers id %q: %v", id, err)
		}
		out[tx.NodeID(n)] = addr
	}
	return out, nil
}

// inheritListener adopts a listening socket passed by the parent at fd.
func inheritListener(fd uintptr, name string) (net.Listener, error) {
	f := os.NewFile(fd, name)
	if f == nil {
		return nil, fmt.Errorf("no inherited %s listener at fd %d", name, fd)
	}
	ln, err := net.FileListener(f)
	f.Close() // FileListener dups the fd
	if err != nil {
		return nil, fmt.Errorf("inherited %s listener at fd %d: %v", name, fd, err)
	}
	return ln, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
