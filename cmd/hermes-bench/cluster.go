package main

import (
	"fmt"
	"os"
	"time"

	"hermes/internal/experiments"
	"hermes/internal/harness"
)

// clusterOpts parameterizes one -cluster bench run.
type clusterOpts struct {
	workers  int
	rows     uint64
	txns     int
	batch    int
	policy   string
	workload string
	seed     int64
	out      string
}

// runClusterBench boots a real multi-process cluster over TCP, drives the
// workload through the closed-loop client, quiesces, compares the final
// node digests against the in-process twin, and writes the merged
// BENCH_cluster.json report. Returns false on a gate failure.
func runClusterBench(o clusterOpts) bool {
	dir, err := os.MkdirTemp("", "hermes-cluster-bench-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		return false
	}
	defer os.RemoveAll(dir)

	ccfg := harness.ClusterConfig{
		Workers:   o.workers,
		Policy:    o.policy,
		Rows:      o.rows,
		Payload:   64,
		BatchSize: o.batch,
		Dir:       dir,
	}
	spec := harness.WorkloadSpec{
		Kind:       o.workload,
		Seed:       o.seed,
		Txns:       o.txns,
		Rows:       o.rows,
		KeysPerTxn: 3,
		Payload:    64,
		Theta:      0.8,
		Window:     2 * o.batch,
	}
	rep := &experiments.ClusterReport{
		Policy:    o.policy,
		Workload:  o.workload,
		Workers:   o.workers,
		Rows:      o.rows,
		Txns:      o.txns,
		BatchSize: o.batch,
		Seed:      o.seed,
	}
	fail := func(format string, args ...any) bool {
		rep.Gate = experiments.ClusterGate{Pass: false, Reason: fmt.Sprintf(format, args...)}
		fmt.Fprintln(os.Stderr, "cluster:", rep.Gate.Reason)
		writeClusterReport(o.out, rep)
		return false
	}

	start := time.Now()
	c, err := harness.StartCluster(ccfg)
	if err != nil {
		return fail("start: %v", err)
	}
	defer c.Close()
	if err := c.Seed(); err != nil {
		return fail("seed: %v", err)
	}
	if err := c.Run(spec); err != nil {
		return fail("run: %v", err)
	}
	res, err := c.WaitRun(3 * time.Minute)
	if err != nil {
		return fail("wait: %v", err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		return fail("quiesce: %v", err)
	}
	digests, err := c.Digests()
	if err != nil {
		return fail("digests: %v", err)
	}
	stats, err := c.Stats()
	if err != nil {
		return fail("stats: %v", err)
	}
	fmt.Printf("cluster: %d workers, %d txns in %.1fs — %.0f txn/s, avg %.2fms, p95 %.2fms\n",
		o.workers, res.Committed, time.Since(start).Seconds(), res.QPS, res.AvgMs, res.P95Ms)

	rep.Committed = res.Committed
	rep.QPS = res.QPS
	rep.AvgMs = res.AvgMs
	rep.P95Ms = res.P95Ms
	var netBytes int64
	for _, st := range stats {
		rep.Processes = append(rep.Processes, experiments.ClusterProcess(st))
		netBytes += st.NetBytes
	}
	if res.Committed > 0 {
		rep.BytesPerTxn = float64(netBytes) / float64(res.Committed)
	}

	twin, err := harness.RunTwin(harness.TwinConfig{
		Workers: o.workers, Policy: o.policy, Rows: o.rows, Payload: 64,
		BatchSize: o.batch,
	}, spec)
	if err != nil {
		return fail("twin: %v", err)
	}
	rep.TwinMatch = len(digests) == len(twin.Digests)
	for i := range digests {
		if !rep.TwinMatch || digests[i] != twin.Digests[i] {
			rep.TwinMatch = false
			break
		}
	}
	switch {
	case res.Committed != int64(o.txns):
		rep.Gate = experiments.ClusterGate{Pass: false,
			Reason: fmt.Sprintf("committed %d of %d transactions", res.Committed, o.txns)}
	case !rep.TwinMatch:
		rep.Gate = experiments.ClusterGate{Pass: false,
			Reason: fmt.Sprintf("cluster digests diverge from the in-process twin: %v vs %v",
				digests, twin.Digests)}
	default:
		rep.Gate = experiments.ClusterGate{Pass: true}
	}
	writeClusterReport(o.out, rep)
	if !rep.Gate.Pass {
		fmt.Fprintln(os.Stderr, "cluster: GATE FAIL:", rep.Gate.Reason)
		return false
	}
	fmt.Printf("cluster: digests match the in-process twin across %d workers\n", o.workers)
	return true
}

func writeClusterReport(path string, rep *experiments.ClusterReport) {
	if path == "" {
		return
	}
	if err := experiments.WriteClusterReport(path, rep); err != nil {
		fmt.Fprintln(os.Stderr, "cluster report:", err)
		return
	}
	fmt.Printf("cluster report -> %s\n", path)
}
