package main

import (
	"fmt"
	"os"
	"time"

	"hermes/internal/chaos"
	"hermes/internal/experiments"
	"hermes/internal/harness"
)

// clusterOpts parameterizes one -cluster bench run.
type clusterOpts struct {
	workers  int
	rows     uint64
	txns     int
	batch    int
	policy   string
	workload string
	seed     int64
	out      string
	traceOut string
	wan      bool
}

// traceRingFor sizes the per-node telemetry rings to hold a whole run:
// every node sees a batched + routed event per transaction plus its own
// locked/executed/committed share, and the driver's cluster ring holds
// enqueued + sequenced. 6x transactions leaves generous headroom.
func traceRingFor(txns int) int {
	n := 8192
	for n < txns*6 {
		n <<= 1
	}
	return n
}

// runClusterBench boots a real multi-process cluster over TCP, drives the
// workload through the closed-loop client, quiesces, compares the final
// node digests against the in-process twin, and writes the merged
// BENCH_cluster.json report. Returns false on a gate failure.
func runClusterBench(o clusterOpts) bool {
	dir, err := os.MkdirTemp("", "hermes-cluster-bench-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		return false
	}
	defer os.RemoveAll(dir)

	ccfg := harness.ClusterConfig{
		Workers:   o.workers,
		Policy:    o.policy,
		Rows:      o.rows,
		Payload:   64,
		BatchSize: o.batch,
		TraceRing: traceRingFor(o.txns),
		Dir:       dir,
	}
	spec := harness.WorkloadSpec{
		Kind:       o.workload,
		Seed:       o.seed,
		Txns:       o.txns,
		Rows:       o.rows,
		KeysPerTxn: 3,
		Payload:    64,
		Theta:      0.8,
		Window:     2 * o.batch,
	}
	rep := &experiments.ClusterReport{
		Policy:    o.policy,
		Workload:  o.workload,
		Workers:   o.workers,
		Rows:      o.rows,
		Txns:      o.txns,
		BatchSize: o.batch,
		Seed:      o.seed,
	}
	fail := func(format string, args ...any) bool {
		rep.Gate = experiments.ClusterGate{Pass: false, Reason: fmt.Sprintf(format, args...)}
		fmt.Fprintln(os.Stderr, "cluster:", rep.Gate.Reason)
		writeClusterReport(o.out, rep)
		return false
	}

	start := time.Now()
	c, err := harness.StartCluster(ccfg)
	if err != nil {
		return fail("start: %v", err)
	}
	defer c.Close()
	if err := c.Seed(); err != nil {
		return fail("seed: %v", err)
	}
	if err := c.Run(spec); err != nil {
		return fail("run: %v", err)
	}
	res, err := c.WaitRun(3 * time.Minute)
	if err != nil {
		return fail("wait: %v", err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		return fail("quiesce: %v", err)
	}
	digests, err := c.Digests()
	if err != nil {
		return fail("digests: %v", err)
	}
	stats, err := c.Stats()
	if err != nil {
		return fail("stats: %v", err)
	}
	fmt.Printf("cluster: %d workers, %d txns in %.1fs — %.0f txn/s, avg %.2fms, p50 %.2fms, p95 %.2fms, p99 %.2fms\n",
		o.workers, res.Committed, time.Since(start).Seconds(), res.QPS, res.AvgMs, res.P50Ms, res.P95Ms, res.P99Ms)

	rep.Committed = res.Committed
	rep.QPS = res.QPS
	rep.AvgMs = res.AvgMs
	rep.P50Ms = res.P50Ms
	rep.P95Ms = res.P95Ms
	rep.P99Ms = res.P99Ms
	rep.MaxMs = res.MaxMs
	var netBytes int64
	for _, st := range stats {
		rep.Processes = append(rep.Processes, experiments.ClusterProcess(st))
		netBytes += st.NetBytes
	}
	if res.Committed > 0 {
		rep.BytesPerTxn = float64(netBytes) / float64(res.Committed)
	}

	// Histogram-backed per-phase latency decomposition, merged across the
	// cluster, plus the tail sampler's capture counts.
	if phases, err := c.PhaseSummaries(); err == nil {
		rep.Phases = phases
		if ps, ok := phases["total"]; ok {
			fmt.Printf("cluster: phase histograms — total p50 %.2fms p95 %.2fms p99 %.2fms (%d commits)\n",
				ps.P50Ms, ps.P95Ms, ps.P99Ms, ps.Count)
		}
	} else {
		fmt.Fprintln(os.Stderr, "cluster: phase summaries:", err)
	}
	if slow, err := c.SlowTxns(); err == nil {
		for _, sr := range slow {
			rep.SlowCaptured += sr.Captured
		}
	}

	// Cluster trace: collect, stitch, and write the Perfetto JSON.
	var traceStats *harness.TraceStats
	if o.traceOut != "" {
		ts, err := c.WritePerfettoFile(o.traceOut)
		if err != nil {
			return fail("trace: %v", err)
		}
		traceStats = &ts
		rep.Trace = &experiments.ClusterTraceSummary{
			File:             o.traceOut,
			Txns:             ts.Txns,
			Committed:        ts.Committed,
			Complete:         ts.Complete,
			CompleteFraction: ts.CompleteFraction,
			MaxBackstepNs:    ts.MaxBackstepNs,
			SlackNs:          ts.SlackNs,
		}
		fmt.Printf("cluster: trace -> %s (%d txns, %.1f%% complete chains, slack %dns)\n",
			o.traceOut, ts.Txns, 100*ts.CompleteFraction, ts.SlackNs)
	}

	twin, err := harness.RunTwin(harness.TwinConfig{
		Workers: o.workers, Policy: o.policy, Rows: o.rows, Payload: 64,
		BatchSize: o.batch,
	}, spec)
	if err != nil {
		return fail("twin: %v", err)
	}
	rep.TwinMatch = len(digests) == len(twin.Digests)
	for i := range digests {
		if !rep.TwinMatch || digests[i] != twin.Digests[i] {
			rep.TwinMatch = false
			break
		}
	}
	// Optional second run: the same workload through the seeded WAN fault
	// profile. Its twin match feeds the gate below.
	if o.wan {
		wan, err := runClusterWAN(o, spec)
		if err != nil {
			return fail("wan: %v", err)
		}
		rep.WAN = wan
	}

	switch {
	case res.Committed != int64(o.txns):
		rep.Gate = experiments.ClusterGate{Pass: false,
			Reason: fmt.Sprintf("committed %d of %d transactions", res.Committed, o.txns)}
	case !rep.TwinMatch:
		rep.Gate = experiments.ClusterGate{Pass: false,
			Reason: fmt.Sprintf("cluster digests diverge from the in-process twin: %v vs %v",
				digests, twin.Digests)}
	case traceStats != nil && traceStats.CompleteFraction < 0.99:
		rep.Gate = experiments.ClusterGate{Pass: false,
			Reason: fmt.Sprintf("only %.1f%% of committed txns have complete cross-process span chains (want >= 99%%)",
				100*traceStats.CompleteFraction)}
	case traceStats != nil && traceStats.MaxBackstepNs > traceStats.SlackNs:
		rep.Gate = experiments.ClusterGate{Pass: false,
			Reason: fmt.Sprintf("clock-aligned timestamps not monotonic: %dns backstep exceeds %dns alignment slack",
				traceStats.MaxBackstepNs, traceStats.SlackNs)}
	case rep.WAN != nil && rep.WAN.Committed != int64(o.txns):
		rep.Gate = experiments.ClusterGate{Pass: false,
			Reason: fmt.Sprintf("WAN run committed %d of %d transactions", rep.WAN.Committed, o.txns)}
	case rep.WAN != nil && !rep.WAN.TwinMatch:
		rep.Gate = experiments.ClusterGate{Pass: false,
			Reason: "WAN run digests diverge from the in-process twin"}
	default:
		rep.Gate = experiments.ClusterGate{Pass: true}
	}
	writeClusterReport(o.out, rep)
	if !rep.Gate.Pass {
		fmt.Fprintln(os.Stderr, "cluster: GATE FAIL:", rep.Gate.Reason)
		return false
	}
	fmt.Printf("cluster: digests match the in-process twin across %d workers\n", o.workers)
	return true
}

// runClusterWAN replays the bench workload through the seeded WAN fault
// profile: every inter-process data link goes through the netchaos proxy
// with realistic asymmetric latency (5ms intra-region, 40ms cross-region),
// a 2-second bidirectional partition that heals on its own, the heartbeat
// supervisor armed, and backpressure at its default watermarks. The run
// measures throughput under degraded networking and proves the digests
// still match the fault-free in-process twin.
func runClusterWAN(o clusterOpts, spec harness.WorkloadSpec) (*experiments.ClusterWANSection, error) {
	const (
		intra  = 5 * time.Millisecond
		cross  = 40 * time.Millisecond
		jitter = 2 * time.Millisecond
		heal   = 2 * time.Second
	)
	sched := chaos.ClusterWANSchedule(o.seed, intra, cross, jitter, heal)
	dir, err := os.MkdirTemp("", "hermes-cluster-wan-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	c, err := harness.StartCluster(harness.ClusterConfig{
		Workers:   o.workers,
		Policy:    o.policy,
		Rows:      o.rows,
		Payload:   64,
		BatchSize: o.batch,
		Net:       sched.Net,
		Dir:       dir,
	})
	if err != nil {
		return nil, fmt.Errorf("start: %w", err)
	}
	defer c.Close()
	if err := c.Seed(); err != nil {
		return nil, fmt.Errorf("seed: %w", err)
	}
	super := c.StartSupervisor(harness.SupervisorConfig{
		Interval: 100 * time.Millisecond,
		Misses:   3,
	})
	start := time.Now()
	if err := c.Run(spec); err != nil {
		return nil, fmt.Errorf("run: %w", err)
	}
	c.NetPlane().Start()
	res, err := c.WaitRun(5 * time.Minute)
	if err != nil {
		return nil, fmt.Errorf("wait: %w", err)
	}
	if err := c.Quiesce(60 * time.Second); err != nil {
		return nil, fmt.Errorf("quiesce: %w", err)
	}
	digests, err := c.Digests()
	if err != nil {
		return nil, fmt.Errorf("digests: %w", err)
	}
	stats, err := c.Stats()
	if err != nil {
		return nil, fmt.Errorf("stats: %w", err)
	}
	twin, err := harness.RunTwin(harness.TwinConfig{
		Workers: o.workers, Policy: o.policy, Rows: o.rows, Payload: 64,
		BatchSize: o.batch,
	}, spec)
	if err != nil {
		return nil, fmt.Errorf("twin: %w", err)
	}

	ns := c.NetPlane().Stats()
	sec := &experiments.ClusterWANSection{
		Schedule:       sched.Name,
		IntraMs:        intra.Milliseconds(),
		CrossMs:        cross.Milliseconds(),
		HealMs:         heal.Milliseconds(),
		Committed:      res.Committed,
		QPS:            res.QPS,
		AvgMs:          res.AvgMs,
		P50Ms:          res.P50Ms,
		P95Ms:          res.P95Ms,
		P99Ms:          res.P99Ms,
		PartitionDrops: ns.TotalPartitionDrops(),
		StreamResets:   ns.TotalResets(),
		Restarts:       super.Stats().TotalRestarts(),
	}
	for _, st := range stats {
		sec.OverloadDelayed += st.OverloadDelayed
		sec.OverloadShed += st.OverloadShed
	}
	sec.TwinMatch = len(digests) == len(twin.Digests)
	for i := range digests {
		if !sec.TwinMatch || digests[i] != twin.Digests[i] {
			sec.TwinMatch = false
			break
		}
	}
	fmt.Printf("cluster: WAN profile %s — %d txns in %.1fs, %.0f txn/s, p95 %.2fms, %d partition drops, twin match %v\n",
		sched.Name, res.Committed, time.Since(start).Seconds(), res.QPS, res.P95Ms, sec.PartitionDrops, sec.TwinMatch)
	return sec, nil
}

func writeClusterReport(path string, rep *experiments.ClusterReport) {
	if path == "" {
		return
	}
	if err := experiments.WriteClusterReport(path, rep); err != nil {
		fmt.Fprintln(os.Stderr, "cluster report:", err)
		return
	}
	fmt.Printf("cluster report -> %s\n", path)
}
