package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"hermes"
	"hermes/internal/engine"
	"hermes/internal/partition"
	"hermes/internal/sequencer"
	"hermes/internal/tx"
)

// execBenchOpts parameterizes one -execbench run.
type execBenchOpts struct {
	nodes        int
	rows         uint64
	txns         int
	batch        int
	trials       int
	hotFraction  float64
	seed         int64
	minSpeedup   float64
	minReduction float64
	out          string
}

// execModeStats is one mode's measured half of the lock-vs-queue twin.
type execModeStats struct {
	Mode        string  `json:"mode"`
	Committed   int64   `json:"committed"`
	ElapsedS    float64 `json:"elapsed_s"`
	QPS         float64 `json:"qps"`
	P95Ms       float64 `json:"p95_ms"`
	LockWaitMs  float64 `json:"lock_wait_ms"`
	QueuePlanMs float64 `json:"queue_plan_ms"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
	SchedMs     float64 `json:"scheduling_ms"`
}

// execBenchGate is the pass/fail verdict: the twin digests must match and
// the speedup/lock-wait thresholds must hold.
type execBenchGate struct {
	Pass   bool   `json:"pass"`
	Reason string `json:"reason,omitempty"`
	// Speedup is queue commit QPS over lock commit QPS.
	Speedup float64 `json:"speedup"`
	// LockWaitReduction is lock-mode LockWait over queue-mode LockWait;
	// null when queue-mode LockWait is exactly zero (no lock manager
	// exists in queue mode, so the reduction is unbounded).
	LockWaitReduction *float64 `json:"lock_wait_reduction"`
	TwinMatch         bool     `json:"twin_match"`
}

// execBenchReport is the BENCH_exec.json shape.
type execBenchReport struct {
	Nodes        int           `json:"nodes"`
	Rows         uint64        `json:"rows"`
	Txns         int           `json:"txns"`
	BatchSize    int           `json:"batch_size"`
	Trials       int           `json:"trials"`
	HotFraction  float64       `json:"hot_fraction"`
	Policy       string        `json:"policy"`
	Seed         int64         `json:"seed"`
	MinSpeedup   float64       `json:"min_speedup"`
	MinReduction float64       `json:"min_lock_wait_reduction"`
	Lock         execModeStats `json:"lock"`
	Queue        execModeStats `json:"queue"`
	Gate         execBenchGate `json:"gate"`
	Written      time.Time     `json:"written"`
}

// hotPerNode is how many hot rows each node's range contributes: several
// independent serial dependency chains per node, so the conservative lock
// manager's per-node admission mutex and per-grant goroutine wakeups are
// contended the way a real hotspot contends them, while queue mode drains
// each chain inline on its bucket worker with no shared state.
const hotPerNode = 8

// execBenchTrace builds the deterministic high-contention hotspot trace:
// hotFraction of the transactions are single-key increments on one of the
// nodes*hotPerNode hot rows, the rest are cross-node two-key increments.
// The identical trace drives both modes, so the digests must match.
func execBenchTrace(o execBenchOpts) []tx.Procedure {
	rng := rand.New(rand.NewSource(o.seed))
	span := o.rows / uint64(o.nodes)
	hot := make([]tx.Key, 0, o.nodes*hotPerNode)
	for i := 0; i < o.nodes; i++ {
		for j := 0; j < hotPerNode; j++ {
			hot = append(hot, tx.MakeKey(0, uint64(i)*span+uint64(j)*(span/hotPerNode)))
		}
	}
	procs := make([]tx.Procedure, o.txns)
	for i := range procs {
		if rng.Float64() < o.hotFraction {
			k := hot[rng.Intn(len(hot))]
			procs[i] = &tx.CounterProc{Reads: []tx.Key{k}, Writes: []tx.Key{k}, Payload: 8}
			continue
		}
		n1 := rng.Intn(o.nodes)
		n2 := (n1 + 1 + rng.Intn(o.nodes-1)) % o.nodes
		k1 := tx.MakeKey(0, uint64(n1)*span+1+uint64(rng.Int63n(int64(span-1))))
		k2 := tx.MakeKey(0, uint64(n2)*span+1+uint64(rng.Int63n(int64(span-1))))
		procs[i] = &tx.CounterProc{Reads: []tx.Key{k1, k2}, Writes: []tx.Key{k1, k2}, Payload: 8}
	}
	return procs
}

// medianByQPS returns the trial with median commit throughput (the lower
// middle for an even count).
func medianByQPS(trials []execModeStats) execModeStats {
	s := append([]execModeStats(nil), trials...)
	sort.Slice(s, func(i, j int) bool { return s[i].QPS < s[j].QPS })
	return s[(len(s)-1)/2]
}

func digestsEqual(a, b []engine.NodeDigest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runExecMode executes the trace on a fresh single-process cluster in the
// given mode and returns its stats and node digests.
func runExecMode(o execBenchOpts, mode string, procs []tx.Procedure) (execModeStats, []engine.NodeDigest, error) {
	st := execModeStats{Mode: mode}
	workers := make([]tx.NodeID, o.nodes)
	for i := range workers {
		workers[i] = tx.NodeID(i)
	}
	pf, err := hermes.PolicyFactoryFor(hermes.PolicyHermes,
		partition.NewUniformRange(0, o.rows, o.nodes), 0, int(o.rows/40))
	if err != nil {
		return st, nil, err
	}
	db, err := engine.New(engine.Config{
		Nodes:  workers,
		Policy: pf,
		// Size-only sealing: txns is a batch multiple, so the batch stream
		// is a function of the trace alone and identical across modes.
		Seq:      sequencer.Config{BatchSize: o.batch, Interval: time.Hour},
		ExecMode: mode,
	})
	if err != nil {
		return st, nil, err
	}
	defer db.Stop()
	for r := uint64(0); r < o.rows; r++ {
		db.LoadRecord(tx.MakeKey(0, r), make([]byte, 8))
	}

	// HERMES_EXECBENCH_CPUPROFILE=<prefix> writes <prefix>-lock.pb.gz and
	// <prefix>-queue.pb.gz CPU profiles, one per mode, for comparing where
	// the two execution paths actually spend their cycles.
	if prefix := os.Getenv("HERMES_EXECBENCH_CPUPROFILE"); prefix != "" {
		f, _ := os.Create(prefix + "-" + mode + ".pb.gz")
		pprof.StartCPUProfile(f)
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	start := time.Now()
	dones := make([]<-chan struct{}, len(procs))
	for i, p := range procs {
		done, err := db.Submit(workers[0], p)
		if err != nil {
			return st, nil, fmt.Errorf("submit %d: %w", i, err)
		}
		dones[i] = done
	}
	for _, done := range dones {
		<-done
	}
	elapsed := time.Since(start)
	if err := db.DrainDetail(time.Minute); err != nil {
		return st, nil, fmt.Errorf("drain: %w", err)
	}

	col := db.Collector()
	bd := col.AvgBreakdown()
	st.Committed = col.Committed()
	st.ElapsedS = elapsed.Seconds()
	st.QPS = float64(st.Committed) / elapsed.Seconds()
	st.P95Ms = ms(col.LatencyQuantile(0.95))
	st.LockWaitMs = ms(bd.LockWait)
	st.QueuePlanMs = ms(bd.QueuePlan)
	st.QueueWaitMs = ms(bd.QueueWait)
	st.SchedMs = ms(bd.Scheduling)
	return st, db.NodeDigests(), nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runExecBench drives the identical hotspot trace through a lock-mode and
// a queue-mode cluster, requires byte-identical node digests, and gates on
// commit-throughput speedup and Fig. 7 lock-wait reduction. Returns false
// on a gate failure.
func runExecBench(o execBenchOpts) bool {
	if o.txns%o.batch != 0 {
		o.txns += o.batch - o.txns%o.batch
	}
	if o.trials < 1 {
		o.trials = 1
	}
	rep := &execBenchReport{
		Nodes: o.nodes, Rows: o.rows, Txns: o.txns, BatchSize: o.batch,
		Trials: o.trials, HotFraction: o.hotFraction, Policy: "hermes",
		Seed: o.seed, MinSpeedup: o.minSpeedup, MinReduction: o.minReduction,
	}
	fail := func(format string, args ...any) bool {
		rep.Gate.Pass = false
		rep.Gate.Reason = fmt.Sprintf(format, args...)
		fmt.Fprintln(os.Stderr, "execbench:", rep.Gate.Reason)
		writeExecBenchReport(o.out, rep)
		return false
	}

	procs := execBenchTrace(o)
	// Median-of-N per mode, with the modes interleaved pairwise: on a
	// loaded or single-core host a single wall-clock trial swings far more
	// than the effect under test, and drift (heap growth, background load)
	// would otherwise bias whichever mode runs last. The median — not the
	// best — trial is reported, because the two modes have very different
	// variance: best-of-N converges on the lucky tail of the noisier mode
	// and misstates the typical ratio. Every trial's digests must still
	// agree — across trials and across modes.
	var lockTrials, queueTrials []execModeStats
	var lockDigests, queueDigests []engine.NodeDigest
	for t := 0; t < o.trials; t++ {
		l, ld, err := runExecMode(o, engine.ExecModeLock, procs)
		if err != nil {
			return fail("lock mode trial %d: %v", t, err)
		}
		runtime.GC()
		q, qd, err := runExecMode(o, engine.ExecModeQueue, procs)
		if err != nil {
			return fail("queue mode trial %d: %v", t, err)
		}
		runtime.GC()
		if t == 0 {
			lockDigests, queueDigests = ld, qd
		} else if !digestsEqual(ld, lockDigests) || !digestsEqual(qd, queueDigests) {
			return fail("trial %d digests diverge from trial 0", t)
		}
		lockTrials = append(lockTrials, l)
		queueTrials = append(queueTrials, q)
	}
	lock := medianByQPS(lockTrials)
	queue := medianByQPS(queueTrials)
	rep.Lock = lock
	rep.Queue = queue
	for _, st := range []execModeStats{lock, queue} {
		fmt.Printf("execbench: %-5s %6d txns in %5.2fs — %8.0f txn/s, p95 %6.2fms, lock-wait %6.3fms, queue plan+wait %.3f+%.3fms\n",
			st.Mode, st.Committed, st.ElapsedS, st.QPS, st.P95Ms, st.LockWaitMs, st.QueuePlanMs, st.QueueWaitMs)
	}

	rep.Gate.TwinMatch = len(lockDigests) == len(queueDigests)
	for i := range lockDigests {
		if !rep.Gate.TwinMatch || lockDigests[i] != queueDigests[i] {
			rep.Gate.TwinMatch = false
			break
		}
	}
	if lock.QPS > 0 {
		rep.Gate.Speedup = queue.QPS / lock.QPS
	}
	if queue.LockWaitMs > 0 {
		r := lock.LockWaitMs / queue.LockWaitMs
		rep.Gate.LockWaitReduction = &r
	}
	switch {
	case !rep.Gate.TwinMatch:
		return fail("queue digests diverge from lock mode: %v vs %v", queueDigests, lockDigests)
	case lock.Committed != int64(o.txns) || queue.Committed != int64(o.txns):
		return fail("committed lock=%d queue=%d of %d transactions", lock.Committed, queue.Committed, o.txns)
	case rep.Gate.Speedup < o.minSpeedup:
		return fail("queue/lock commit speedup %.2fx below the %.2fx gate", rep.Gate.Speedup, o.minSpeedup)
	case rep.Gate.LockWaitReduction != nil && *rep.Gate.LockWaitReduction < o.minReduction:
		return fail("lock-wait reduction %.1fx below the %.1fx gate", *rep.Gate.LockWaitReduction, o.minReduction)
	}
	rep.Gate.Pass = true
	writeExecBenchReport(o.out, rep)
	if rep.Gate.LockWaitReduction == nil {
		fmt.Printf("execbench: GATE PASS — %.2fx commit speedup, lock wait %.3fms -> 0 (no lock manager), digests identical\n",
			rep.Gate.Speedup, lock.LockWaitMs)
	} else {
		fmt.Printf("execbench: GATE PASS — %.2fx commit speedup, %.1fx lock-wait reduction, digests identical\n",
			rep.Gate.Speedup, *rep.Gate.LockWaitReduction)
	}
	return true
}

func writeExecBenchReport(path string, rep *execBenchReport) {
	if path == "" {
		return
	}
	rep.Written = time.Now()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "execbench report:", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "execbench report:", err)
		return
	}
	fmt.Printf("execbench report -> %s\n", path)
}
