package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"hermes/internal/engine"
	"hermes/internal/harness"
)

// durableOpts parameterizes one -durablebench run.
type durableOpts struct {
	workers  int
	rows     uint64
	txns     int
	batch    int
	trials   int
	seed     int64
	minRatio float64
	out      string
}

// durablePolicyResult is one fsync policy's measured cost.
type durablePolicyResult struct {
	Policy   string    `json:"policy"`
	QPS      float64   `json:"qps"` // median-throughput trial
	TrialQPS []float64 `json:"trial_qps"`
	AvgMs    float64   `json:"avg_ms"`
	P95Ms    float64   `json:"p95_ms"`
	// Fsyncs and Batches sum the workers' journal counters in the median
	// trial; AcksPerFsync is the group-commit amortization (batch policy).
	Fsyncs       int64   `json:"journal_fsyncs"`
	Batches      int64   `json:"journal_batches"`
	AcksPerFsync float64 `json:"acks_per_fsync,omitempty"`
	Retransmits  int64   `json:"retransmits"`
}

// durableGate is the pass/fail verdict the PR pins.
type durableGate struct {
	Pass   bool   `json:"pass"`
	Reason string `json:"reason,omitempty"`
}

// durableReport is BENCH_durable.json.
type durableReport struct {
	Workers        int                   `json:"workers"`
	Rows           uint64                `json:"rows"`
	Txns           int                   `json:"txns"`
	BatchSize      int                   `json:"batch_size"`
	Trials         int                   `json:"trials"`
	Seed           int64                 `json:"seed"`
	MinRatio       float64               `json:"min_batch_over_none"`
	Policies       []durablePolicyResult `json:"policies"`
	BatchOverNone  float64               `json:"batch_over_none"`
	AlwaysOverNone float64               `json:"always_over_none"`
	DigestsMatch   bool                  `json:"digests_match"`
	Gate           durableGate           `json:"gate"`
}

// durableTrial is one cluster run's raw outcome.
type durableTrial struct {
	res     *harness.RunResult
	fsyncs  int64
	batches int64
	acks    int64
	retrans int64
	digests []engine.NodeDigest
}

// runDurableBench measures what journal durability costs: the identical
// workload runs on a real multi-process cluster under each fsync policy
// (none / batch / always), interleaved across trials so machine noise
// spreads evenly. The gate requires (a) byte-identical node digests across
// all policies and trials — fsync timing must never leak into state — and
// (b) group commit keeping at least minRatio of the no-fsync throughput,
// the "durability is affordable" claim. Returns false on gate failure.
func runDurableBench(o durableOpts) bool {
	policies := []string{"none", "batch", "always"}
	trials := make(map[string][]durableTrial, len(policies))
	rep := &durableReport{
		Workers: o.workers, Rows: o.rows, Txns: o.txns, BatchSize: o.batch,
		Trials: o.trials, Seed: o.seed, MinRatio: o.minRatio,
	}
	fail := func(format string, args ...any) bool {
		rep.Gate = durableGate{Pass: false, Reason: fmt.Sprintf(format, args...)}
		fmt.Fprintln(os.Stderr, "durable:", rep.Gate.Reason)
		writeDurableReport(o.out, rep)
		return false
	}

	var refDigests []engine.NodeDigest
	rep.DigestsMatch = true
	for trial := 0; trial < o.trials; trial++ {
		for _, pol := range policies {
			t, err := runDurableTrial(o, pol)
			if err != nil {
				return fail("fsync=%s trial %d: %v", pol, trial, err)
			}
			if t.res.Committed != int64(o.txns) {
				return fail("fsync=%s trial %d committed %d of %d", pol, trial, t.res.Committed, o.txns)
			}
			if refDigests == nil {
				refDigests = t.digests
			} else if !digestsEqual(refDigests, t.digests) {
				rep.DigestsMatch = false
				return fail("fsync=%s trial %d digests diverge from fsync=none: %v vs %v",
					pol, trial, t.digests, refDigests)
			}
			trials[pol] = append(trials[pol], t)
			fmt.Printf("durable: fsync=%-6s trial %d: %7.0f txn/s, p95 %.2fms, %d fsyncs\n",
				pol, trial, t.res.QPS, t.res.P95Ms, t.fsyncs)
		}
	}

	for _, pol := range policies {
		ts := trials[pol]
		med := medianTrial(ts)
		pr := durablePolicyResult{
			Policy:      pol,
			QPS:         med.res.QPS,
			AvgMs:       med.res.AvgMs,
			P95Ms:       med.res.P95Ms,
			Fsyncs:      med.fsyncs,
			Batches:     med.batches,
			Retransmits: med.retrans,
		}
		if med.batches > 0 {
			pr.AcksPerFsync = float64(med.acks) / float64(med.batches)
		}
		for _, t := range ts {
			pr.TrialQPS = append(pr.TrialQPS, t.res.QPS)
		}
		rep.Policies = append(rep.Policies, pr)
	}
	noneQPS := rep.Policies[0].QPS
	if noneQPS > 0 {
		rep.BatchOverNone = rep.Policies[1].QPS / noneQPS
		rep.AlwaysOverNone = rep.Policies[2].QPS / noneQPS
	}
	for _, pr := range rep.Policies {
		fmt.Printf("durable: fsync=%-6s median %7.0f txn/s (p95 %.2fms, %d fsyncs, %.1f acks/fsync, %d retransmits)\n",
			pr.Policy, pr.QPS, pr.P95Ms, pr.Fsyncs, pr.AcksPerFsync, pr.Retransmits)
	}
	fmt.Printf("durable: batch/none = %.2fx, always/none = %.2fx (gate: batch >= %.2fx)\n",
		rep.BatchOverNone, rep.AlwaysOverNone, o.minRatio)

	switch {
	case rep.Policies[1].Fsyncs == 0:
		rep.Gate = durableGate{Pass: false, Reason: "fsync=batch issued zero fsyncs; the bench measured nothing"}
	case rep.BatchOverNone < o.minRatio:
		rep.Gate = durableGate{Pass: false, Reason: fmt.Sprintf(
			"group commit keeps %.2fx of no-fsync throughput, gate requires %.2fx", rep.BatchOverNone, o.minRatio)}
	default:
		rep.Gate = durableGate{Pass: true}
	}
	writeDurableReport(o.out, rep)
	if !rep.Gate.Pass {
		fmt.Fprintln(os.Stderr, "durable: GATE FAIL:", rep.Gate.Reason)
		return false
	}
	fmt.Printf("durable: digests identical across all policies; group commit keeps %.2fx of no-fsync throughput\n",
		rep.BatchOverNone)
	return true
}

// runDurableTrial boots one cluster under the given fsync policy, drives
// the workload, and collects throughput, digests, and journal counters.
func runDurableTrial(o durableOpts, fsync string) (durableTrial, error) {
	var t durableTrial
	dir, err := os.MkdirTemp("", "hermes-durable-bench-")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dir)

	c, err := harness.StartCluster(harness.ClusterConfig{
		Workers:   o.workers,
		Policy:    "hermes",
		Rows:      o.rows,
		Payload:   64,
		BatchSize: o.batch,
		Fsync:     fsync,
		Dir:       dir,
	})
	if err != nil {
		return t, fmt.Errorf("start: %w", err)
	}
	defer c.Close()
	if err := c.Seed(); err != nil {
		return t, fmt.Errorf("seed: %w", err)
	}
	spec := harness.WorkloadSpec{
		Kind:       harness.WorkloadYCSB,
		Seed:       o.seed,
		Txns:       o.txns,
		Rows:       o.rows,
		KeysPerTxn: 3,
		Payload:    64,
		// Moderate skew and a deep in-flight window (both identical for
		// every policy) isolate the effect under test. The deep window
		// gives group commit something to amortize — each fsync covers
		// the frames of many concurrent transactions instead of
		// serializing on one batch's round trip — and the moderate skew
		// keeps the no-fsync baseline from becoming lock-wait-bound,
		// which would confound durability cost with contention cost.
		Theta:  0.05,
		Window: 8 * o.batch,
	}
	if err := c.Run(spec); err != nil {
		return t, fmt.Errorf("run: %w", err)
	}
	res, err := c.WaitRun(3 * time.Minute)
	if err != nil {
		return t, fmt.Errorf("wait: %w", err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		return t, fmt.Errorf("quiesce: %w", err)
	}
	t.digests, err = c.Digests()
	if err != nil {
		return t, fmt.Errorf("digests: %w", err)
	}
	stats, err := c.Stats()
	if err != nil {
		return t, fmt.Errorf("stats: %w", err)
	}
	for _, st := range stats {
		t.fsyncs += st.JournalFsyncs
		t.batches += st.JournalBatches
		t.acks += st.JournalBatchedAcks
		t.retrans += st.Retransmits
	}
	t.res = res
	return t, nil
}

// medianTrial picks the median-throughput trial (odd counts exact).
func medianTrial(ts []durableTrial) durableTrial {
	sorted := append([]durableTrial(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].res.QPS < sorted[j].res.QPS })
	return sorted[len(sorted)/2]
}

func writeDurableReport(path string, rep *durableReport) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "durable report:", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "durable report:", err)
		return
	}
	fmt.Printf("durable report -> %s\n", path)
}
