// Command hermes-bench regenerates the paper's tables and figures on the
// emulated cluster.
//
// Usage:
//
//	hermes-bench -list
//	hermes-bench -experiment fig6b
//	hermes-bench -experiment all -full
//	hermes-bench -experiment fig6b -report out.json
//
// With -report, every measured run also lands in a JSON report: per-window
// throughput/CPU/net series, the latency breakdown, routing cost, and the
// final telemetry gauge snapshot (fusion, migration, transport counters).
//
// Without -full, experiments run at the downscaled benchmark scale
// (seconds per system); with -full they run at a larger scale closer to
// the paper's parameter ranges (minutes per figure).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hermes/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("experiment", "", "experiment to run (fig1..fig14, or 'all')")
		full    = flag.Bool("full", false, "run at full scale (slower, closer to paper parameters)")
		nodes   = flag.Int("nodes", 0, "override node count")
		rows    = flag.Uint64("rows", 0, "override table size")
		clients = flag.Int("clients", 0, "override closed-loop client count")
		phase   = flag.Duration("phase", 0, "override measured duration per system run")
		seed    = flag.Int64("seed", 0, "override random seed")
		exec    = flag.String("exec", "", "execution backend for experiments: lock, queue, or both (fig7 prints modes side by side)")
		report  = flag.String("report", "", "write a JSON run report (per-window series, breakdowns, telemetry gauges) to this file")

		cluster  = flag.Bool("cluster", false, "run the multi-process cluster bench (real hermesd processes over TCP) instead of an experiment")
		traceOut = flag.String("trace-out", "", "cluster bench: write a Perfetto/Chrome trace-event JSON of the run (open in ui.perfetto.dev)")
		cTxns    = flag.Int("cluster-txns", 1200, "cluster bench: transactions")
		cBatch   = flag.Int("cluster-batch", 25, "cluster bench: sequencer batch size")
		cPolicy  = flag.String("cluster-policy", "hermes", "cluster bench: routing policy")
		cLoad    = flag.String("cluster-workload", "ycsb", "cluster bench: workload kind (ycsb|hotspot)")
		cWorkers = flag.Int("cluster-workers", 3, "cluster bench: worker processes")
		cWAN     = flag.Bool("cluster-wan", false, "cluster bench: also replay the workload under the seeded WAN fault profile (asymmetric latency + partition/heal) and gate on its twin match")

		execBench = flag.Bool("execbench", false, "run the lock-vs-queue hotspot twin bench instead of an experiment")
		ebTxns    = flag.Int("execbench-txns", 65536, "execbench: transactions (rounded up to a batch multiple)")
		ebTrials  = flag.Int("execbench-trials", 5, "execbench: trials per mode (the median-throughput trial is reported)")
		ebHot     = flag.Float64("execbench-hot", 0.98, "execbench: fraction of single-hot-key transactions")
		ebSpeedup = flag.Float64("execbench-min-speedup", 1.5, "execbench: minimum queue/lock commit-throughput ratio")
		ebReduce  = flag.Float64("execbench-min-reduction", 5, "execbench: minimum lock-wait reduction (lock/queue)")

		durableBench = flag.Bool("durablebench", false, "run the fsync-policy cluster bench (none/batch/always) instead of an experiment")
		dbTxns       = flag.Int("durablebench-txns", 4000, "durablebench: transactions per trial")
		dbTrials     = flag.Int("durablebench-trials", 3, "durablebench: trials per fsync policy (median-throughput trial reported)")
		dbWorkers    = flag.Int("durablebench-workers", 3, "durablebench: worker processes")
		dbBatch      = flag.Int("durablebench-batch", 25, "durablebench: sequencer batch size")
		dbRatio      = flag.Float64("durablebench-min-ratio", 0.70, "durablebench: minimum batch/none commit-throughput ratio")
	)
	flag.Parse()

	if *execBench {
		o := execBenchOpts{
			nodes: 4, rows: 4096, txns: *ebTxns, batch: 256,
			trials: *ebTrials, hotFraction: *ebHot, seed: 7,
			minSpeedup: *ebSpeedup, minReduction: *ebReduce, out: *report,
		}
		if *nodes > 0 {
			o.nodes = *nodes
		}
		if *rows > 0 {
			o.rows = *rows
		}
		if *seed != 0 {
			o.seed = *seed
		}
		if !runExecBench(o) {
			os.Exit(1)
		}
		return
	}

	if *durableBench {
		o := durableOpts{
			workers: *dbWorkers, rows: 4000, txns: *dbTxns, batch: *dbBatch,
			trials: *dbTrials, seed: 42, minRatio: *dbRatio, out: *report,
		}
		if *rows > 0 {
			o.rows = *rows
		}
		if *seed != 0 {
			o.seed = *seed
		}
		if !runDurableBench(o) {
			os.Exit(1)
		}
		return
	}

	if *cluster {
		o := clusterOpts{
			workers: *cWorkers, rows: 4000, txns: *cTxns, batch: *cBatch,
			policy: *cPolicy, workload: *cLoad, seed: 42, out: *report,
			traceOut: *traceOut, wan: *cWAN,
		}
		if *rows > 0 {
			o.rows = *rows
		}
		if *seed != 0 {
			o.seed = *seed
		}
		if !runClusterBench(o) {
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.Names(), " "))
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	sc := experiments.Small()
	if *full {
		sc = experiments.Full()
	}
	if *nodes > 0 {
		sc.Nodes = *nodes
	}
	if *rows > 0 {
		sc.Rows = *rows
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *phase > 0 {
		sc.Phase = *phase
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	switch *exec {
	case "":
	case "both":
		sc.ExecModes = []string{"lock", "queue"}
	case "lock", "queue":
		sc.ExecMode = *exec
	default:
		fmt.Fprintf(os.Stderr, "bad -exec %q (want lock, queue, or both)\n", *exec)
		os.Exit(2)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}

	var records []experiments.RunRecord
	current := ""
	if *report != "" {
		experiments.SetReportSink(func(rec experiments.RunRecord) {
			rec.Experiment = current
			records = append(records, rec)
		})
		defer experiments.SetReportSink(nil)
	}

	for _, name := range names {
		run, ok := experiments.Registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", name)
			os.Exit(2)
		}
		current = name
		start := time.Now()
		res, err := run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	if *report != "" {
		out := struct {
			Scale   experiments.Scale       `json:"scale"`
			Runs    []experiments.RunRecord `json:"runs"`
			Written time.Time               `json:"written"`
		}{Scale: sc, Runs: records, Written: time.Now()}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*report, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report: %d runs -> %s\n", len(records), *report)
	}
}
