// Command tracegen emits a synthetic Google-like cluster load trace as
// CSV (one row per machine, one column per window) — the substitute for
// the Google cluster-usage trace described in DESIGN.md §5 and used by
// the Fig. 1 experiment.
//
// Usage:
//
//	tracegen -machines 20 -windows 2160 -seed 1 > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"hermes/internal/trace"
)

func main() {
	var (
		machines = flag.Int("machines", 20, "number of machines")
		windows  = flag.Int("windows", 2160, "number of time windows")
		seed     = flag.Int64("seed", 1, "random seed")
		spikes   = flag.Float64("spike-rate", 0, "override per-window spike probability")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg := trace.DefaultConfig(*machines, *windows, *seed)
	if *spikes > 0 {
		cfg.SpikeRate = *spikes
	}
	c := trace.Generate(cfg)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.WriteString(c.MarshalCSV()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
