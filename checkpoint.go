package hermes

import (
	"time"

	"hermes/internal/engine"
)

// Checkpoint is a consistent snapshot of the whole cluster (§4.3): the
// storage of every node after a batch boundary plus the command-log
// prefix from which the deterministic routing state can be rebuilt by
// replay.
type Checkpoint = engine.Checkpoint

// Checkpoint quiesces the database and snapshots it. The returned
// checkpoint, together with the command-log tail (which the engine keeps
// internally), is sufficient to rebuild the exact cluster state.
func (db *DB) Checkpoint(timeout time.Duration) (*Checkpoint, error) {
	return db.cluster.Checkpoint(timeout)
}

// Recover reopens a database from a checkpoint taken by an identically
// configured instance: storage is restored, routing state (fusion tables,
// placement) is rebuilt by replaying the deterministic routing algorithm
// over the checkpointed input prefix, and any tail of post-checkpoint
// input is re-executed. The options must match the original instance
// (same nodes, policy, and partitioning), otherwise replayed routing
// diverges from the original run.
func Recover(opts Options, cp *Checkpoint) (*DB, error) {
	if opts.Policy == "" {
		opts.Policy = PolicyHermes
	}
	base := opts.Base
	if base == nil && opts.Rows > 0 {
		// Mirror Open's defaulting so a round-trip with the same Options
		// reconstructs the same partitioner.
		db, err := Open(opts)
		if err != nil {
			return nil, err
		}
		db.Close()
		base = db.base
	}
	opts.Base = base
	return recoverWith(opts, cp)
}

func recoverWith(opts Options, cp *Checkpoint) (*DB, error) {
	tmp, err := Open(opts) // validates options and builds config defaults
	if err != nil {
		return nil, err
	}
	cfg := tmp.cluster.ConfigCopy()
	tmp.Close()
	cl, err := engine.Recover(cfg, cp, nil)
	if err != nil {
		return nil, err
	}
	return &DB{cluster: cl, opts: opts, base: opts.Base}, nil
}
