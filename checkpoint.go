package hermes

import (
	"time"

	"hermes/internal/engine"
)

// Checkpoint is a consistent snapshot of the whole cluster (§4.3): the
// storage of every node after a batch boundary plus a snapshot of the
// deterministic routing state at that boundary. Taking one also truncates
// the in-memory command log behind it, bounding log growth.
type Checkpoint = engine.Checkpoint

// Checkpoint quiesces the database and snapshots it. The returned
// checkpoint, together with the command-log tail retained after it (see
// Tail), is sufficient to rebuild the exact cluster state.
func (db *DB) Checkpoint(timeout time.Duration) (*Checkpoint, error) {
	return db.cluster.Checkpoint(timeout)
}

// Recover reopens a database from a checkpoint taken by an identically
// configured instance: storage and routing state (fusion tables,
// placement) are restored from the snapshot. The options must match the
// original instance (same nodes, policy, and partitioning), otherwise
// post-recovery routing diverges from the original run.
func Recover(opts Options, cp *Checkpoint) (*DB, error) {
	return RecoverWithTail(opts, cp, nil)
}

// RecoverWithTail is Recover plus re-execution of the post-checkpoint
// input tail (as returned by Tail on the original instance): the restored
// cluster replays the batches in order, deterministically reproducing the
// state the original reached after them.
func RecoverWithTail(opts Options, cp *Checkpoint, tail []*Batch) (*DB, error) {
	if opts.Policy == "" {
		opts.Policy = PolicyHermes
	}
	base := opts.Base
	if base == nil && opts.Rows > 0 {
		// Mirror Open's defaulting so a round-trip with the same Options
		// reconstructs the same partitioner.
		db, err := Open(opts)
		if err != nil {
			return nil, err
		}
		db.Close()
		base = db.base
	}
	opts.Base = base
	return recoverWith(opts, cp, tail)
}

func recoverWith(opts Options, cp *Checkpoint, tail []*Batch) (*DB, error) {
	tmp, err := Open(opts) // validates options and builds config defaults
	if err != nil {
		return nil, err
	}
	cfg := tmp.cluster.ConfigCopy()
	tmp.Close()
	cl, err := engine.Recover(cfg, cp, tail)
	if err != nil {
		return nil, err
	}
	return &DB{cluster: cl, opts: opts, base: opts.Base}, nil
}
